//! `wfc-repl/v1` message shapes: the replicated [`Entry`], the peer
//! protocol frames, and the status-frame validator `report --check`
//! dispatches to.
//!
//! Every frame is a JSON object with `proto: "wfc-repl/v1"` and a
//! `type` drawn from [`wfc_spec::repl::msg`]. Frames travel over the
//! same length-prefixed framing as `wfc-svc/v1` (the service frontend
//! routes them off the shared listener by the `proto` field), so the
//! replication layer needs no port, no second listener, and no second
//! poll loop of its own.

use wfc_obs::json::Json;
use wfc_spec::hash::Hash128;
use wfc_spec::repl::{msg, PROTO};

/// One replicated unit: a result-cache insert. `key` is the 128-bit
/// cache key in hex; `result` is the full result document, so a replica
/// can apply the insert byte-identically without recomputing anything.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    /// Cache key (32 hex digits).
    pub key: String,
    /// Query kind slug (`classify`, `sched`, …).
    pub kind: String,
    /// The type (or sched target) name, for the disk tier's metadata.
    pub type_name: String,
    /// The cached result document.
    pub result: Json,
}

impl Entry {
    /// Renders the entry as its wire/WAL object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("key", Json::Str(self.key.clone())),
            ("kind", Json::Str(self.kind.clone())),
            ("type", Json::Str(self.type_name.clone())),
            ("result", self.result.clone()),
        ])
    }

    /// Parses an entry object, validating the key's shape.
    ///
    /// # Errors
    ///
    /// A description of the first missing or malformed field.
    pub fn from_json(doc: &Json) -> Result<Entry, String> {
        let key = doc
            .get("key")
            .and_then(Json::as_str)
            .ok_or("entry: missing string `key`")?;
        if Hash128::from_hex(key).is_none() {
            return Err(format!("entry: `key` is not a 128-bit hex hash: `{key}`"));
        }
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("entry: missing string `kind`")?;
        let type_name = doc
            .get("type")
            .and_then(Json::as_str)
            .ok_or("entry: missing string `type`")?;
        let result = doc
            .get("result")
            .cloned()
            .ok_or("entry: missing `result`")?;
        Ok(Entry {
            key: key.to_owned(),
            kind: kind.to_owned(),
            type_name: type_name.to_owned(),
            result,
        })
    }
}

fn base(ty: &str) -> Vec<(&'static str, Json)> {
    vec![
        ("proto", Json::Str(PROTO.to_owned())),
        ("type", Json::Str(ty.to_owned())),
    ]
}

/// `hello {from, last_index}` — sent on every fresh outbound link.
pub fn hello(from: u64, last_index: u64) -> Json {
    let mut fields = base(msg::HELLO);
    fields.push(("from", Json::U64(from)));
    fields.push(("last_index", Json::U64(last_index)));
    Json::obj(fields)
}

/// `propose {from, entry}` — a follower asking the sequencer to order.
pub fn propose(from: u64, entry: &Entry) -> Json {
    let mut fields = base(msg::PROPOSE);
    fields.push(("from", Json::U64(from)));
    fields.push(("entry", entry.to_json()));
    Json::obj(fields)
}

/// `append {index, entry}` — the sequencer replicating an ordered entry.
pub fn append(index: u64, entry: &Entry) -> Json {
    let mut fields = base(msg::APPEND);
    fields.push(("index", Json::U64(index)));
    fields.push(("entry", entry.to_json()));
    Json::obj(fields)
}

/// `ack {from, index}` — a follower confirming a durable append.
pub fn ack(from: u64, index: u64) -> Json {
    let mut fields = base(msg::ACK);
    fields.push(("from", Json::U64(from)));
    fields.push(("index", Json::U64(index)));
    Json::obj(fields)
}

/// `commit {index, entry}` — majority reached; the entry rides along so
/// a replica that missed the append can still apply it.
pub fn commit(index: u64, entry: &Entry) -> Json {
    let mut fields = base(msg::COMMIT);
    fields.push(("index", Json::U64(index)));
    fields.push(("entry", entry.to_json()));
    Json::obj(fields)
}

/// `status {id}` — a client asking a node for its replication status.
pub fn status_request(id: u64) -> Json {
    let mut fields = base(msg::STATUS);
    fields.push(("id", Json::U64(id)));
    Json::obj(fields)
}

/// Whether `doc` is a `wfc-repl/v1` frame at all (the frontend's
/// routing test).
pub fn is_repl_frame(doc: &Json) -> bool {
    doc.get("proto").and_then(Json::as_str) == Some(PROTO)
}

/// The frame's `type` slug, if present.
pub fn frame_type(doc: &Json) -> Option<&str> {
    doc.get("type").and_then(Json::as_str)
}

/// Validates a `status-reply` frame — the shape `wfc cluster-status`
/// prints and `report --check` verifies for captured cluster-smoke
/// artifacts.
///
/// # Errors
///
/// A description of the first structural violation found.
pub fn validate_status_json(doc: &Json) -> Result<(), String> {
    if !is_repl_frame(doc) {
        return Err(format!("proto must be `{PROTO}`"));
    }
    match frame_type(doc) {
        Some(t) if t == msg::STATUS_REPLY => {}
        other => {
            return Err(format!(
                "type must be `{}`, got {other:?}",
                msg::STATUS_REPLY
            ))
        }
    }
    doc.get("id")
        .and_then(Json::as_u64)
        .ok_or("status-reply: missing u64 `id`")?;
    let enabled = match doc.get("enabled") {
        Some(Json::Bool(b)) => *b,
        _ => return Err("status-reply: missing bool `enabled`".to_owned()),
    };
    if !enabled {
        return Ok(()); // a non-clustered node reports only that much
    }
    for key in [
        "node_id",
        "sequencer",
        "last_index",
        "committed",
        "applied",
        "wal_records",
    ] {
        doc.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("status-reply: missing u64 `{key}`"))?;
    }
    let members = doc
        .get("members")
        .and_then(Json::as_arr)
        .ok_or("status-reply: missing `members` array")?;
    if members.is_empty() {
        return Err("status-reply: `members` must not be empty".to_owned());
    }
    let mut ids = Vec::new();
    for m in members {
        ids.push(m.as_u64().ok_or("status-reply: members must be u64 ids")?);
    }
    let node_id = doc.get("node_id").and_then(Json::as_u64).unwrap_or(0);
    if !ids.contains(&node_id) {
        return Err("status-reply: `members` must include `node_id`".to_owned());
    }
    let sequencer = doc.get("sequencer").and_then(Json::as_u64).unwrap_or(0);
    if ids.iter().min() != Some(&sequencer) {
        return Err("status-reply: `sequencer` must be the lowest member id".to_owned());
    }
    let committed = doc.get("committed").and_then(Json::as_u64).unwrap_or(0);
    let applied = doc.get("applied").and_then(Json::as_u64).unwrap_or(0);
    if applied > committed {
        return Err(format!(
            "status-reply: applied ({applied}) exceeds committed ({committed})"
        ));
    }
    match doc.get("peers_connected") {
        Some(v) if v.as_u64().is_some() => Ok(()),
        _ => Err("status-reply: missing u64 `peers_connected`".to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> Entry {
        Entry {
            key: format!("{:032x}", 0xabcdu128),
            kind: "classify".to_owned(),
            type_name: "test_and_set".to_owned(),
            result: Json::obj(vec![("case", Json::U64(2))]),
        }
    }

    #[test]
    fn entry_round_trips() {
        let e = entry();
        let parsed = Entry::from_json(&e.to_json()).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn entry_rejects_bad_keys() {
        let mut doc = entry().to_json();
        if let Json::Obj(fields) = &mut doc {
            fields[0].1 = Json::Str("not-hex".to_owned());
        }
        assert!(Entry::from_json(&doc).unwrap_err().contains("hex"));
    }

    #[test]
    fn frames_carry_proto_and_type() {
        let e = entry();
        for (doc, ty) in [
            (hello(3, 7), msg::HELLO),
            (propose(2, &e), msg::PROPOSE),
            (append(4, &e), msg::APPEND),
            (ack(1, 4), msg::ACK),
            (commit(4, &e), msg::COMMIT),
            (status_request(9), msg::STATUS),
        ] {
            assert!(is_repl_frame(&doc));
            assert_eq!(frame_type(&doc), Some(ty));
        }
    }

    #[test]
    fn status_validator_accepts_good_and_rejects_bad() {
        let good = Json::obj(vec![
            ("proto", Json::Str(PROTO.to_owned())),
            ("type", Json::Str(msg::STATUS_REPLY.to_owned())),
            ("id", Json::U64(1)),
            ("enabled", Json::Bool(true)),
            ("node_id", Json::U64(2)),
            ("sequencer", Json::U64(1)),
            (
                "members",
                Json::Arr(vec![Json::U64(1), Json::U64(2), Json::U64(3)]),
            ),
            ("last_index", Json::U64(5)),
            ("committed", Json::U64(5)),
            ("applied", Json::U64(5)),
            ("wal_records", Json::U64(10)),
            ("peers_connected", Json::U64(2)),
        ]);
        validate_status_json(&good).unwrap();
        let disabled = Json::obj(vec![
            ("proto", Json::Str(PROTO.to_owned())),
            ("type", Json::Str(msg::STATUS_REPLY.to_owned())),
            ("id", Json::U64(1)),
            ("enabled", Json::Bool(false)),
        ]);
        validate_status_json(&disabled).unwrap();
        let mut wrong_seq = good.clone();
        if let Json::Obj(fields) = &mut wrong_seq {
            fields.iter_mut().find(|(k, _)| k == "sequencer").unwrap().1 = Json::U64(2);
        }
        assert!(validate_status_json(&wrong_seq).is_err());
        assert!(validate_status_json(&Json::Null).is_err());
    }
}
