//! Crash-durable file writes: the one helper every persistence path in
//! the workspace routes through.
//!
//! A temp-file + `rename` is only "atomic" against *readers*; against
//! power loss it guarantees nothing unless the file's bytes are synced
//! before the rename and the directory entry is synced after it. A
//! crash between `rename` and the directory fsync can resurface the
//! old name — or, worse on some filesystems, the new name pointing at
//! a zero-length inode. [`write_durably`] closes both windows:
//!
//! 1. write the contents to a process/thread-unique temp file,
//! 2. `sync_all` the temp file (data + metadata reach the disk),
//! 3. `rename` over the destination,
//! 4. `sync_all` the containing directory (the rename itself is
//!    durable).
//!
//! On non-Unix targets directories cannot be opened for sync; step 4
//! degrades to best-effort there, which matches what the platform can
//! express.

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Durably replaces `path` (inside `dir`) with `contents` plus a
/// trailing newline. See the module docs for the exact fsync protocol.
///
/// # Errors
///
/// Any I/O failure creating, writing, syncing, or renaming the file.
pub fn write_durably(dir: &Path, path: &Path, contents: &str) -> io::Result<()> {
    let mut bytes = Vec::with_capacity(contents.len() + 1);
    bytes.extend_from_slice(contents.as_bytes());
    bytes.push(b'\n');
    write_durably_bytes(dir, path, &bytes)
}

/// [`write_durably`] for raw bytes (no trailing newline appended) —
/// the WAL's compaction rewrite goes through this.
///
/// # Errors
///
/// Any I/O failure creating, writing, syncing, or renaming the file.
pub fn write_durably_bytes(dir: &Path, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = dir.join(format!(
        ".tmp-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    sync_dir(dir)
}

/// Fsyncs a directory so a just-renamed entry survives a crash. On
/// platforms where a directory cannot be opened as a file this is a
/// no-op — the strongest guarantee the platform offers.
///
/// # Errors
///
/// The directory's `sync_all` failure (Unix only).
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        fs::File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_durably_replaces_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("wfc-repl-durable-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("target.json");
        write_durably(&dir, &path, "first").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first\n");
        write_durably(&dir, &path, "second").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second\n");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must not accumulate");
        let _ = fs::remove_dir_all(&dir);
    }
}
