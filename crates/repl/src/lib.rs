//! `wfc-repl` — state-machine replication for the analysis result
//! store.
//!
//! The paper's service layer (`wfc serve`) memoises consensus analyses
//! in a cache; this crate keeps N such nodes *agreed* on that cache's
//! contents and makes the agreement survive crashes. It is the
//! distributed-systems dogfood of the paper's own subject matter: the
//! cluster solves a (crash-stop, majority-quorum) agreement problem so
//! that a query answered by any node warms every node.
//!
//! Four pieces, each its own module:
//!
//! - [`durable`] — the fsync-correct temp-file/rename write helper
//!   (file synced before the rename, directory synced after) that every
//!   persistence path here *and* the service's disk cache tier uses.
//! - [`wal`] — the append-only write-ahead log: CRC-framed JSON
//!   records, fsynced per append, trailing corruption truncated on
//!   replay.
//! - [`msg`] — the `wfc-repl/v1` frames (entry, hello/propose/append/
//!   ack/commit/status) and the status-frame validator.
//! - [`node`] — the static-sequencer majority-commit state machine,
//!   pure of IO except its own WAL: inputs are frames, outputs are
//!   [`node::Effect`]s, which is what makes it checkable.
//! - [`check`] — exhaustive minority-crash enumeration at N = 3 over
//!   real on-disk state, asserting agreement, validity, durability.
//!
//! The scheduler-level proof obligations (agreement and validity under
//! adversarial interleaving of proposers) live as fixtures in
//! `wfc-sched`; this crate's checker covers the crash axis the
//! scheduler cannot: what the disk holds when the process dies.

pub mod check;
pub mod durable;
pub mod msg;
pub mod node;
pub mod wal;

pub use check::{check_crash_tolerance, CrashReport};
pub use msg::Entry;
pub use node::{Effect, Node, NodeConfig, NodeId, Recovery};
pub use wfc_spec::repl::{PROTO, SNAPSHOT_SCHEMA};
