//! The replication state machine: a static-sequencer, majority-quorum
//! replicated log over the [`crate::msg`] frames, with write-ahead
//! durability and snapshot/compaction.
//!
//! ## The commit rule
//!
//! Membership is static and known to every node; the **sequencer** is
//! the member with the lowest id. Any node may propose an entry; a
//! follower forwards the proposal to the sequencer. The sequencer
//! assigns the next log index, appends the entry to its own WAL
//! (fsynced), and replicates `append {index, entry}` to every peer.
//! A follower appends to its WAL, then answers `ack {index}`. When the
//! sequencer holds acks from a **majority** of members (its own durable
//! append included), it writes a `commit` record, applies the entry,
//! and broadcasts `commit {index, entry}`; followers write their own
//! commit record and apply.
//!
//! *Agreement* — no two nodes apply different entries at the same
//! index — holds because exactly one process assigns indices and every
//! `append`/`commit` for an index carries that one assignment;
//! followers never overwrite an occupied slot. *Validity* — every
//! applied entry was proposed — holds because entries enter the
//! protocol only through `propose`/`assign`. Both properties are
//! model-checked at N=3 by the `repl` fixture in `wfc-sched` (with
//! `repl_broken` as the planted-bug control), and the crash claim —
//! a committed entry survives any minority of crashes because it is
//! durable on a majority of WALs — is exercised exhaustively by
//! [`crate::check`].
//!
//! ## What a crash costs
//!
//! Nothing that was committed. A committed entry has `append` records
//! on a majority of WALs, each fsynced before its ack; any surviving
//! majority therefore holds it, and a restarted node replays its own
//! WAL over its last snapshot and asks the sequencer (via `hello`) for
//! whatever it missed. Liveness is another matter: the sequencer is
//! static, so while it is down no *new* entry commits — reads keep
//! being served everywhere from the local caches, and replication
//! resumes when the sequencer returns. That trade (pause, don't fork)
//! is deliberate: a result cache wants agreement and durability, not
//! leader election.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};

use wfc_obs::json::Json;
use wfc_spec::repl::{msg, PROTO, SNAPSHOT_SCHEMA};

use crate::durable::write_durably;
use crate::msg::{self as frames, Entry};
use crate::wal::Wal;

/// A member's identifier. Must be unique within the cluster.
pub type NodeId = u64;

/// The snapshot file's name inside a node's data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.json";

/// Static cluster shape for one node.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// This node's id.
    pub node_id: NodeId,
    /// Every member id, this node included. Deduplicated and sorted on
    /// [`Node::open`]; the lowest id is the sequencer.
    pub members: Vec<NodeId>,
    /// Compact once the WAL holds this many records (0 disables).
    pub compact_threshold: u64,
}

impl NodeConfig {
    /// A single-node "cluster" (majority of one; commits immediately).
    pub fn solo(node_id: NodeId) -> NodeConfig {
        NodeConfig {
            node_id,
            members: vec![node_id],
            compact_threshold: 1024,
        }
    }
}

/// What the caller must do after a state transition: write `msg` to the
/// outbound link of `to`, or apply a committed entry to the local
/// store. Effects are the node's *only* output channel — the state
/// machine itself never touches a socket, which is what makes it
/// checkable.
#[derive(Debug)]
pub enum Effect {
    /// Queue `msg` on the link to member `to`.
    Send {
        /// Destination member.
        to: NodeId,
        /// The rendered `wfc-repl/v1` frame.
        msg: Json,
    },
    /// Apply a committed entry to the local result store.
    Apply {
        /// The entry's log index.
        index: u64,
        /// The committed entry.
        entry: Entry,
    },
}

/// What [`Node::open`] recovered from disk.
#[derive(Debug)]
pub struct Recovery {
    /// Re-apply these committed entries to the local store (the store
    /// insert is idempotent, so replaying twice is harmless).
    pub effects: Vec<Effect>,
    /// The WAL had a corrupt suffix (now truncated).
    pub wal_corrupt: bool,
    /// Committed entries recovered (snapshot prefix excluded).
    pub recovered: u64,
    /// The snapshot's compacted prefix length.
    pub snapshot_last_index: u64,
}

/// One replication node. Single-threaded by design: the service drives
/// it from the IO thread, the checker from a test harness.
#[derive(Debug)]
pub struct Node {
    node_id: NodeId,
    members: Vec<NodeId>,
    compact_threshold: u64,
    data_dir: PathBuf,
    wal: Wal,
    /// Entries known, by index (indices start at 1). Pruned ≤ snapshot.
    log: BTreeMap<u64, Entry>,
    committed: BTreeSet<u64>,
    applied: BTreeSet<u64>,
    /// Sequencer: acks per uncommitted index (own durable append counts).
    acks: HashMap<u64, BTreeSet<NodeId>>,
    /// Sequencer: cache keys already ordered, for duplicate suppression.
    seen_keys: HashSet<String>,
    /// Sequencer: the next index to assign.
    next_index: u64,
    /// Highest index this node has seen in any record.
    last_seen: u64,
    /// Indices ≤ this are committed, applied, and compacted away.
    snapshot_last_index: u64,
}

fn wal_append_record(index: u64, entry: &Entry) -> Json {
    Json::obj(vec![
        ("op", Json::Str("append".to_owned())),
        ("index", Json::U64(index)),
        ("entry", entry.to_json()),
    ])
}

fn wal_commit_record(index: u64) -> Json {
    Json::obj(vec![
        ("op", Json::Str("commit".to_owned())),
        ("index", Json::U64(index)),
    ])
}

impl Node {
    /// Opens (or creates) a node's durable state under `data_dir` and
    /// recovers it: snapshot first, then the WAL replayed over it.
    ///
    /// # Errors
    ///
    /// I/O failures, or a config whose members do not include
    /// `node_id`. Corrupt WAL suffixes and corrupt snapshots are
    /// *not* errors — they are counted, reported, and survived.
    pub fn open(config: NodeConfig, data_dir: &Path) -> io::Result<(Node, Recovery)> {
        let mut members = config.members.clone();
        members.push(config.node_id);
        members.sort_unstable();
        members.dedup();
        if members.is_empty() {
            return Err(io::Error::other("replication: empty membership"));
        }
        std::fs::create_dir_all(data_dir)?;
        let snapshot_last_index = read_snapshot(data_dir, config.node_id);
        let (wal, replay) = Wal::open(data_dir)?;

        let mut log = BTreeMap::new();
        let mut committed = BTreeSet::new();
        let mut last_seen = snapshot_last_index;
        for record in &replay.records {
            let Some(index) = record.get("index").and_then(Json::as_u64) else {
                continue;
            };
            if index <= snapshot_last_index {
                continue; // compacted prefix straggler (crash mid-compaction)
            }
            last_seen = last_seen.max(index);
            match record.get("op").and_then(Json::as_str) {
                Some("append") => {
                    if let Some(entry) = record.get("entry").and_then(|e| Entry::from_json(e).ok())
                    {
                        log.entry(index).or_insert(entry);
                    }
                }
                Some("commit") if log.contains_key(&index) => {
                    committed.insert(index);
                }
                _ => {}
            }
        }
        let applied = committed.clone();
        let effects: Vec<Effect> = committed
            .iter()
            .map(|&index| Effect::Apply {
                index,
                entry: log[&index].clone(),
            })
            .collect();
        let recovered = effects.len() as u64;
        wfc_obs::gauge_set!("repl.recovered.entries", recovered as i64);
        let seen_keys = log.values().map(|e| e.key.clone()).collect();
        let node = Node {
            node_id: config.node_id,
            members,
            compact_threshold: config.compact_threshold,
            data_dir: data_dir.to_path_buf(),
            wal,
            log,
            committed,
            applied,
            acks: HashMap::new(),
            seen_keys,
            next_index: last_seen + 1,
            last_seen,
            snapshot_last_index,
        };
        Ok((
            node,
            Recovery {
                effects,
                wal_corrupt: replay.corrupt,
                recovered,
                snapshot_last_index,
            },
        ))
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node_id
    }

    /// The cluster membership, sorted.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// The sequencer: the lowest member id.
    pub fn sequencer(&self) -> NodeId {
        self.members[0]
    }

    /// Whether this node orders the log.
    pub fn is_sequencer(&self) -> bool {
        self.node_id == self.sequencer()
    }

    fn majority(&self) -> usize {
        self.members.len() / 2 + 1
    }

    fn peers(&self) -> impl Iterator<Item = NodeId> + '_ {
        let me = self.node_id;
        self.members.iter().copied().filter(move |&m| m != me)
    }

    /// Committed entries, counting the compacted snapshot prefix.
    pub fn committed_count(&self) -> u64 {
        self.snapshot_last_index + self.committed.len() as u64
    }

    /// Applied entries, counting the compacted snapshot prefix.
    pub fn applied_count(&self) -> u64 {
        self.snapshot_last_index + self.applied.len() as u64
    }

    /// The highest log index this node has seen.
    pub fn last_index(&self) -> u64 {
        self.last_seen
    }

    /// The contiguous committed prefix — what `hello` advertises: every
    /// index up to it is already durable and applied here.
    fn contiguous_committed(&self) -> u64 {
        let mut up_to = self.snapshot_last_index;
        while self.committed.contains(&(up_to + 1)) {
            up_to += 1;
        }
        up_to
    }

    /// The handshake frame to send on a freshly established link.
    pub fn hello_msg(&self) -> Json {
        frames::hello(self.node_id, self.contiguous_committed())
    }

    /// The `status-reply` frame for a client's `status` request.
    pub fn status(&self, id: u64, peers_connected: u64) -> Json {
        Json::obj(vec![
            ("proto", Json::Str(PROTO.to_owned())),
            ("type", Json::Str(msg::STATUS_REPLY.to_owned())),
            ("id", Json::U64(id)),
            ("enabled", Json::Bool(true)),
            ("node_id", Json::U64(self.node_id)),
            ("sequencer", Json::U64(self.sequencer())),
            (
                "members",
                Json::Arr(self.members.iter().map(|&m| Json::U64(m)).collect()),
            ),
            ("last_index", Json::U64(self.last_seen)),
            ("committed", Json::U64(self.committed_count())),
            ("applied", Json::U64(self.applied_count())),
            ("wal_records", Json::U64(self.wal.records_since_open())),
            ("snapshot_last_index", Json::U64(self.snapshot_last_index)),
            ("peers_connected", Json::U64(peers_connected)),
        ])
    }

    /// Proposes an entry: the sequencer orders it directly, a follower
    /// forwards it to the sequencer.
    ///
    /// # Errors
    ///
    /// WAL I/O failures (sequencer path only).
    pub fn propose(&mut self, entry: Entry) -> io::Result<Vec<Effect>> {
        wfc_obs::counter!("repl.proposed");
        if self.is_sequencer() {
            let mut effects = Vec::new();
            self.assign(entry, &mut effects)?;
            Ok(effects)
        } else {
            Ok(vec![Effect::Send {
                to: self.sequencer(),
                msg: frames::propose(self.node_id, &entry),
            }])
        }
    }

    /// Handles one inbound `wfc-repl/v1` frame. Malformed or mis-routed
    /// frames are counted and ignored, never fatal — a replication peer
    /// must not be able to crash the service with a bad byte.
    ///
    /// # Errors
    ///
    /// WAL I/O failures only.
    pub fn handle(&mut self, doc: &Json) -> io::Result<Vec<Effect>> {
        let mut effects = Vec::new();
        match frames::frame_type(doc) {
            Some(t) if t == msg::HELLO => self.on_hello(doc, &mut effects),
            Some(t) if t == msg::PROPOSE => self.on_propose(doc, &mut effects)?,
            Some(t) if t == msg::APPEND => self.on_append(doc, &mut effects)?,
            Some(t) if t == msg::ACK => self.on_ack(doc, &mut effects)?,
            Some(t) if t == msg::COMMIT => self.on_commit(doc, &mut effects)?,
            _ => wfc_obs::counter!("repl.frames.bad"),
        }
        Ok(effects)
    }

    /// Sequencer: assign the next index and start replication.
    fn assign(&mut self, entry: Entry, effects: &mut Vec<Effect>) -> io::Result<()> {
        if self.seen_keys.contains(&entry.key) {
            wfc_obs::counter!("repl.proposals.duplicate");
            return Ok(());
        }
        let index = self.next_index;
        self.next_index += 1;
        self.wal.append(&wal_append_record(index, &entry))?;
        self.seen_keys.insert(entry.key.clone());
        self.last_seen = self.last_seen.max(index);
        for peer in self.peers().collect::<Vec<_>>() {
            effects.push(Effect::Send {
                to: peer,
                msg: frames::append(index, &entry),
            });
        }
        self.log.insert(index, entry);
        self.acks.entry(index).or_default().insert(self.node_id);
        self.maybe_commit(index, effects)
    }

    fn on_hello(&mut self, doc: &Json, effects: &mut Vec<Effect>) {
        let (Some(from), Some(last_index)) = (
            doc.get("from").and_then(Json::as_u64),
            doc.get("last_index").and_then(Json::as_u64),
        ) else {
            wfc_obs::counter!("repl.frames.bad");
            return;
        };
        // Catch-up is sequencer-driven: re-send what the peer is
        // missing. Committed entries travel as `commit` (append+commit
        // in one), uncommitted ones as `append` so the ack/commit round
        // completes normally — that is also how a sequencer restarted
        // mid-commit re-gathers its lost in-memory acks.
        if !self.is_sequencer() || !self.members.contains(&from) || from == self.node_id {
            return;
        }
        for (&index, entry) in self.log.range(last_index.saturating_add(1)..) {
            let msg = if self.committed.contains(&index) {
                frames::commit(index, entry)
            } else {
                frames::append(index, entry)
            };
            effects.push(Effect::Send { to: from, msg });
        }
    }

    fn on_propose(&mut self, doc: &Json, effects: &mut Vec<Effect>) -> io::Result<()> {
        if !self.is_sequencer() {
            wfc_obs::counter!("repl.frames.misrouted");
            return Ok(());
        }
        match doc.get("entry").map(Entry::from_json) {
            Some(Ok(entry)) => self.assign(entry, effects),
            _ => {
                wfc_obs::counter!("repl.frames.bad");
                Ok(())
            }
        }
    }

    fn on_append(&mut self, doc: &Json, effects: &mut Vec<Effect>) -> io::Result<()> {
        let (Some(index), Some(Ok(entry))) = (
            doc.get("index").and_then(Json::as_u64),
            doc.get("entry").map(Entry::from_json),
        ) else {
            wfc_obs::counter!("repl.frames.bad");
            return Ok(());
        };
        if index <= self.snapshot_last_index {
            // Already durable (and compacted) here; just re-ack.
            effects.push(Effect::Send {
                to: self.sequencer(),
                msg: frames::ack(self.node_id, index),
            });
            return Ok(());
        }
        match self.log.get(&index) {
            Some(existing) if *existing != entry => {
                // A single static sequencer cannot honestly produce
                // this; refuse to overwrite — agreement over liveness.
                wfc_obs::counter!("repl.log.conflict");
                return Ok(());
            }
            Some(_) => {} // duplicate append (catch-up): already durable
            None => {
                self.wal.append(&wal_append_record(index, &entry))?;
                self.last_seen = self.last_seen.max(index);
                self.log.insert(index, entry);
            }
        }
        effects.push(Effect::Send {
            to: self.sequencer(),
            msg: frames::ack(self.node_id, index),
        });
        Ok(())
    }

    fn on_ack(&mut self, doc: &Json, effects: &mut Vec<Effect>) -> io::Result<()> {
        let (Some(from), Some(index)) = (
            doc.get("from").and_then(Json::as_u64),
            doc.get("index").and_then(Json::as_u64),
        ) else {
            wfc_obs::counter!("repl.frames.bad");
            return Ok(());
        };
        if !self.is_sequencer() || !self.members.contains(&from) {
            wfc_obs::counter!("repl.frames.misrouted");
            return Ok(());
        }
        if index <= self.snapshot_last_index || self.committed.contains(&index) {
            return Ok(()); // late ack for an already-committed index
        }
        let acks = self.acks.entry(index).or_default();
        acks.insert(from);
        if self.log.contains_key(&index) {
            // Our own WAL copy counts; a restarted sequencer re-gathers
            // a majority without replaying its in-memory ack set.
            self.acks.entry(index).or_default().insert(self.node_id);
        }
        self.maybe_commit(index, effects)
    }

    /// Sequencer: commit `index` once a majority has it durably.
    fn maybe_commit(&mut self, index: u64, effects: &mut Vec<Effect>) -> io::Result<()> {
        let reached = self
            .acks
            .get(&index)
            .is_some_and(|a| a.len() >= self.majority());
        if !reached || self.committed.contains(&index) || !self.log.contains_key(&index) {
            return Ok(());
        }
        self.wal.append(&wal_commit_record(index))?;
        self.committed.insert(index);
        self.acks.remove(&index);
        let entry = self.log[&index].clone();
        wfc_obs::counter!("repl.committed");
        for peer in self.peers().collect::<Vec<_>>() {
            effects.push(Effect::Send {
                to: peer,
                msg: frames::commit(index, &entry),
            });
        }
        self.apply(index, entry, effects);
        self.maybe_compact()
    }

    fn on_commit(&mut self, doc: &Json, effects: &mut Vec<Effect>) -> io::Result<()> {
        let (Some(index), Some(Ok(entry))) = (
            doc.get("index").and_then(Json::as_u64),
            doc.get("entry").map(Entry::from_json),
        ) else {
            wfc_obs::counter!("repl.frames.bad");
            return Ok(());
        };
        if index <= self.snapshot_last_index || self.committed.contains(&index) {
            return Ok(());
        }
        if !self.log.contains_key(&index) {
            self.wal.append(&wal_append_record(index, &entry))?;
            self.last_seen = self.last_seen.max(index);
            self.log.insert(index, entry);
        }
        self.wal.append(&wal_commit_record(index))?;
        self.committed.insert(index);
        wfc_obs::counter!("repl.committed");
        let entry = self.log[&index].clone();
        self.apply(index, entry, effects);
        self.maybe_compact()
    }

    fn apply(&mut self, index: u64, entry: Entry, effects: &mut Vec<Effect>) {
        if self.applied.insert(index) {
            wfc_obs::counter!("repl.applied");
            effects.push(Effect::Apply { index, entry });
        }
    }

    /// Writes a snapshot of the contiguous committed prefix and rewrites
    /// the WAL to just the records beyond it, once the WAL is long
    /// enough to be worth it. The snapshot itself is tiny — the *data*
    /// is already durable in the service's (fsynced) disk cache tier;
    /// what the snapshot pins is how far the log can be forgotten.
    fn maybe_compact(&mut self) -> io::Result<()> {
        if self.compact_threshold == 0 || self.wal.records_since_open() < self.compact_threshold {
            return Ok(());
        }
        let prefix = {
            // Only indices both committed *and applied* may be dropped.
            let mut up_to = self.snapshot_last_index;
            while self.committed.contains(&(up_to + 1)) && self.applied.contains(&(up_to + 1)) {
                up_to += 1;
            }
            up_to
        };
        if prefix == self.snapshot_last_index {
            return Ok(()); // nothing contiguous to drop yet
        }
        let snapshot = Json::obj(vec![
            ("schema", Json::Str(SNAPSHOT_SCHEMA.to_owned())),
            ("node_id", Json::U64(self.node_id)),
            ("last_index", Json::U64(prefix)),
        ]);
        write_durably(
            &self.data_dir,
            &self.data_dir.join(SNAPSHOT_FILE),
            &snapshot.render(),
        )?;
        self.snapshot_last_index = prefix;
        let mut survivors = Vec::new();
        for (&index, entry) in self.log.range(prefix + 1..) {
            survivors.push(wal_append_record(index, entry));
            if self.committed.contains(&index) {
                survivors.push(wal_commit_record(index));
            }
        }
        self.wal.rewrite(&survivors)?;
        let dropped: Vec<u64> = self.log.range(..=prefix).map(|(&i, _)| i).collect();
        for index in dropped {
            if let Some(entry) = self.log.remove(&index) {
                self.seen_keys.remove(&entry.key);
            }
            self.committed.remove(&index);
            self.applied.remove(&index);
            self.acks.remove(&index);
        }
        wfc_obs::gauge_set!("repl.snapshot.last_index", prefix as i64);
        Ok(())
    }
}

/// Reads the snapshot's compacted-prefix length, tolerating a missing
/// or corrupt file (counted under `repl.snapshot.corrupt`, recovered
/// as "no snapshot" — the WAL still holds anything not yet compacted,
/// and compacted entries live in the disk cache tier).
fn read_snapshot(dir: &Path, node_id: NodeId) -> u64 {
    let path = dir.join(SNAPSHOT_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(_) => return 0,
    };
    let corrupt = |_| {
        wfc_obs::counter!("repl.snapshot.corrupt");
        0
    };
    let Ok(doc) = wfc_obs::json::parse(&text) else {
        return corrupt(());
    };
    if doc.get("schema").and_then(Json::as_str) != Some(SNAPSHOT_SCHEMA)
        || doc.get("node_id").and_then(Json::as_u64) != Some(node_id)
    {
        return corrupt(());
    }
    match doc.get("last_index").and_then(Json::as_u64) {
        Some(last_index) => last_index,
        None => corrupt(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wfc-repl-node-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn entry(i: u64) -> Entry {
        Entry {
            key: format!("{i:032x}"),
            kind: "classify".to_owned(),
            type_name: format!("type-{i}"),
            result: Json::obj(vec![("value", Json::U64(i))]),
        }
    }

    fn config(node_id: NodeId, n: u64) -> NodeConfig {
        NodeConfig {
            node_id,
            members: (1..=n).collect(),
            compact_threshold: 0,
        }
    }

    fn sends(effects: &[Effect]) -> Vec<(NodeId, &Json)> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send { to, msg } => Some((*to, msg)),
                Effect::Apply { .. } => None,
            })
            .collect()
    }

    fn applies(effects: &[Effect]) -> Vec<u64> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Apply { index, .. } => Some(*index),
                Effect::Send { .. } => None,
            })
            .collect()
    }

    #[test]
    fn solo_node_commits_immediately_and_recovers() {
        let dir = tmp_dir("solo");
        {
            let (mut node, recovery) = Node::open(NodeConfig::solo(1), &dir).unwrap();
            assert_eq!(recovery.recovered, 0);
            let effects = node.propose(entry(1)).unwrap();
            assert_eq!(applies(&effects), vec![1]);
            assert!(sends(&effects).is_empty());
            assert_eq!(node.committed_count(), 1);
        }
        let (node, recovery) = Node::open(NodeConfig::solo(1), &dir).unwrap();
        assert_eq!(recovery.recovered, 1);
        assert_eq!(applies(&recovery.effects), vec![1]);
        assert_eq!(node.committed_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Drives a full 3-node round by hand: propose on a follower,
    /// sequencing, acks, commits — asserting the majority rule fires at
    /// exactly the right ack.
    #[test]
    fn three_node_commit_round() {
        let dirs: Vec<_> = (1..=3).map(|i| tmp_dir(&format!("trio-{i}"))).collect();
        let (mut n1, _) = Node::open(config(1, 3), &dirs[0]).unwrap();
        let (mut n2, _) = Node::open(config(2, 3), &dirs[1]).unwrap();
        let (mut n3, _) = Node::open(config(3, 3), &dirs[2]).unwrap();
        assert!(n1.is_sequencer() && !n2.is_sequencer());

        // Follower 2 proposes: one forward to the sequencer.
        let fx = n2.propose(entry(7)).unwrap();
        let fwd = sends(&fx);
        assert_eq!(fwd.len(), 1);
        assert_eq!(fwd[0].0, 1);

        // Sequencer orders it: appends to 2 and 3, no commit yet
        // (only its own durable copy counts so far).
        let fx = n1.handle(fwd[0].1).unwrap();
        assert_eq!(applies(&fx), Vec::<u64>::new());
        let appends = sends(&fx);
        assert_eq!(appends.len(), 2);

        // Node 3 acks; with the sequencer's own copy that is a
        // majority: the sequencer commits, applies, and broadcasts.
        let to3 = appends.iter().find(|(to, _)| *to == 3).unwrap().1;
        let fx3 = n3.handle(to3).unwrap();
        let ack3 = sends(&fx3);
        assert_eq!(ack3.len(), 1);
        let fx = n1.handle(ack3[0].1).unwrap();
        assert_eq!(applies(&fx), vec![1]);
        let commits = sends(&fx);
        assert_eq!(commits.len(), 2);
        assert_eq!(n1.committed_count(), 1);

        // Commit reaches node 3: it applies the same entry at the same
        // index.
        let c3 = commits.iter().find(|(to, _)| *to == 3).unwrap().1;
        let fx = n3.handle(c3).unwrap();
        assert_eq!(applies(&fx), vec![1]);
        assert_eq!(n3.committed_count(), 1);

        // Node 2 never saw the append (say it was slow); the commit
        // alone is enough — it carries the entry.
        let c2 = commits.iter().find(|(to, _)| *to == 2).unwrap().1;
        let fx = n2.handle(c2).unwrap();
        assert_eq!(applies(&fx), vec![1]);
        assert_eq!(n2.committed_count(), 1);
        for dir in dirs {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn hello_catch_up_resends_missed_commits() {
        let d1 = tmp_dir("hello-1");
        let d3 = tmp_dir("hello-3");
        let (mut n1, _) = Node::open(config(1, 3), &d1).unwrap();
        let (mut n3, _) = Node::open(config(3, 3), &d3).unwrap();
        // Commit two entries with node 2's acks (simulated frames);
        // node 3 misses everything.
        for i in 1..=2u64 {
            let fx = n1.propose(entry(i)).unwrap();
            assert!(applies(&fx).is_empty());
            let fx = n1.handle(&frames::ack(2, i)).unwrap();
            assert_eq!(applies(&fx), vec![i]);
        }
        // Node 3 comes up and hellos with last_index 0.
        let fx = n1.handle(&n3.hello_msg()).unwrap();
        let catch_up = sends(&fx);
        assert_eq!(catch_up.len(), 2);
        for (_, msg) in catch_up {
            let fx = n3.handle(msg).unwrap();
            assert_eq!(applies(&fx).len(), 1);
        }
        assert_eq!(n3.committed_count(), 2);
        let _ = std::fs::remove_dir_all(&d1);
        let _ = std::fs::remove_dir_all(&d3);
    }

    #[test]
    fn duplicate_proposals_are_suppressed() {
        let dir = tmp_dir("dedup");
        let (mut node, _) = Node::open(NodeConfig::solo(1), &dir).unwrap();
        assert_eq!(node.propose(entry(1)).unwrap().len(), 1);
        assert_eq!(node.propose(entry(1)).unwrap().len(), 0);
        assert_eq!(node.committed_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_snapshots_and_survives_restart() {
        let dir = tmp_dir("compact");
        {
            let mut cfg = NodeConfig::solo(1);
            cfg.compact_threshold = 4;
            let (mut node, _) = Node::open(cfg, &dir).unwrap();
            for i in 1..=5 {
                node.propose(entry(i)).unwrap();
            }
            assert_eq!(node.committed_count(), 5);
            assert!(
                node.snapshot_last_index > 0,
                "threshold 4 must have compacted"
            );
            assert!(dir.join(SNAPSHOT_FILE).exists());
        }
        let mut cfg = NodeConfig::solo(1);
        cfg.compact_threshold = 4;
        let (node, recovery) = Node::open(cfg, &dir).unwrap();
        assert_eq!(
            node.committed_count(),
            5,
            "snapshot prefix + WAL tail must add back up"
        );
        assert_eq!(recovery.snapshot_last_index, node.snapshot_last_index);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_is_ignored_not_fatal() {
        let dir = tmp_dir("badsnap");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(SNAPSHOT_FILE), "{ not json").unwrap();
        let (mut node, recovery) = Node::open(NodeConfig::solo(1), &dir).unwrap();
        assert_eq!(recovery.snapshot_last_index, 0);
        node.propose(entry(1)).unwrap();
        assert_eq!(node.committed_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_frame_validates() {
        let dir = tmp_dir("status");
        let (mut node, _) = Node::open(config(2, 3), &dir).unwrap();
        let fx = node.handle(&frames::commit(1, &entry(1))).unwrap();
        assert_eq!(applies(&fx), vec![1]);
        let status = node.status(42, 2);
        crate::msg::validate_status_json(&status).unwrap();
        assert_eq!(status.get("committed").and_then(Json::as_u64), Some(1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
