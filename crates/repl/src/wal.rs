//! The append-only write-ahead log: CRC-framed JSON records, fsynced
//! per append, replayed (and trailing corruption truncated) on
//! recovery.
//!
//! ## Record framing
//!
//! ```text
//! [ u32 LE payload length ][ u32 LE CRC-32 of payload ][ payload ]
//! ```
//!
//! The payload is the compact JSON rendering of one log operation (see
//! [`crate::node`] for the two shapes, `append` and `commit`). A record
//! is valid iff its length header fits in the file, is at most
//! [`MAX_RECORD`], its CRC matches, and its payload parses as JSON.
//!
//! ## Corruption policy
//!
//! A crash mid-append leaves a truncated (or, with a torn sector, a
//! garbled) suffix. Recovery keeps the longest valid record prefix,
//! truncates the file back to that boundary so later appends never
//! interleave with garbage, bumps the `repl.wal.corrupt` counter, and
//! reports `corrupt: true` — it never propagates an error for a bad
//! *suffix*, because that is the expected shape of a crash, not an
//! exceptional one. The truncation test in this module exercises every
//! byte offset of a record to pin that promise down.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use wfc_obs::json::Json;

use crate::durable::write_durably_bytes;

/// Upper bound on one record's payload, mirroring the wire frame cap.
pub const MAX_RECORD: usize = 16 << 20;

/// The WAL file's name inside a node's data directory.
pub const WAL_FILE: &str = "wal.log";

/// CRC-32 (IEEE, reflected) of `bytes` — the classic table-driven
/// implementation, `std`-only like everything else here.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// Frames one payload into `out` (length, CRC, bytes).
fn frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// What replaying a WAL found.
#[derive(Debug)]
pub struct Replay {
    /// Every record in the valid prefix, in append order.
    pub records: Vec<Json>,
    /// A corrupt suffix was found (and truncated away).
    pub corrupt: bool,
    /// Bytes dropped by the truncation.
    pub dropped_bytes: u64,
}

/// Scans `bytes` for the longest valid record prefix. Returns the
/// records and the byte length of that prefix.
fn scan(bytes: &[u8]) -> (Vec<Json>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while let Some(header) = bytes.get(pos..pos + 8) {
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_RECORD {
            break;
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(doc) = wfc_obs::json::parse(text) else {
            break;
        };
        records.push(doc);
        pos += 8 + len;
    }
    (records, pos)
}

/// An open write-ahead log. Appends are fsynced before returning — an
/// acknowledged append survives a crash, which is exactly the property
/// the commit rule's majority counts.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    path: PathBuf,
    file: File,
    /// Records appended since open/compaction (the compaction trigger).
    records_since_open: u64,
}

impl Wal {
    /// Opens (creating if missing) the WAL in `dir`, first replaying it:
    /// the returned [`Replay`] holds every valid record, and any corrupt
    /// suffix has been truncated off the file.
    ///
    /// # Errors
    ///
    /// I/O failures opening, reading, or truncating the file. A corrupt
    /// *suffix* is not an error (see the module docs).
    pub fn open(dir: &Path) -> io::Result<(Wal, Replay)> {
        fs::create_dir_all(dir)?;
        let path = dir.join(WAL_FILE);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (records, valid_len) = scan(&bytes);
        let corrupt = valid_len < bytes.len();
        let dropped = (bytes.len() - valid_len) as u64;
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        if corrupt {
            wfc_obs::counter!("repl.wal.corrupt");
            file.set_len(valid_len as u64)?;
            file.sync_all()?;
        }
        let records_since_open = records.len() as u64;
        Ok((
            Wal {
                dir: dir.to_path_buf(),
                path,
                file,
                records_since_open,
            },
            Replay {
                records,
                corrupt,
                dropped_bytes: dropped,
            },
        ))
    }

    /// Appends one record and fsyncs it.
    ///
    /// # Errors
    ///
    /// The write or sync failure.
    pub fn append(&mut self, payload: &Json) -> io::Result<()> {
        let rendered = payload.render();
        let mut framed = Vec::with_capacity(rendered.len() + 8);
        frame_into(&mut framed, rendered.as_bytes());
        self.file.write_all(&framed)?;
        self.file.sync_all()?;
        self.records_since_open += 1;
        wfc_obs::counter!("repl.wal.appends");
        Ok(())
    }

    /// Records appended since this handle was opened or last compacted.
    pub fn records_since_open(&self) -> u64 {
        self.records_since_open
    }

    /// Durably replaces the log's contents with `survivors` (compaction:
    /// the caller has just snapshotted everything else), then reopens
    /// the append handle on the new file.
    ///
    /// # Errors
    ///
    /// Any failure writing the replacement or reopening it.
    pub fn rewrite(&mut self, survivors: &[Json]) -> io::Result<()> {
        let mut bytes = Vec::new();
        for payload in survivors {
            frame_into(&mut bytes, payload.render().as_bytes());
        }
        write_durably_bytes(&self.dir, &self.path, &bytes)?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.records_since_open = survivors.len() as u64;
        wfc_obs::counter!("repl.wal.compactions");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wfc-repl-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn rec(i: u64) -> Json {
        Json::obj(vec![
            ("op", Json::Str("append".to_owned())),
            ("index", Json::U64(i)),
        ])
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The two classic check values for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_replay_round_trips() {
        let dir = tmp_dir("roundtrip");
        {
            let (mut wal, replay) = Wal::open(&dir).unwrap();
            assert!(replay.records.is_empty() && !replay.corrupt);
            for i in 0..5 {
                wal.append(&rec(i)).unwrap();
            }
        }
        let (_, replay) = Wal::open(&dir).unwrap();
        assert!(!replay.corrupt);
        assert_eq!(replay.records.len(), 5);
        for (i, r) in replay.records.iter().enumerate() {
            assert_eq!(r.get("index").and_then(Json::as_u64), Some(i as u64));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// The satellite's pinned promise: truncating the file at *every*
    /// byte offset of the second record yields the first record intact,
    /// a `corrupt` verdict exactly when bytes were dropped, and never an
    /// error. Garbage (bit-flipped) suffixes are likewise absorbed.
    #[test]
    fn truncation_at_every_offset_is_tolerated() {
        let dir = tmp_dir("truncate");
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            wal.append(&rec(0)).unwrap();
            wal.append(&rec(1)).unwrap();
        }
        let full = fs::read(dir.join(WAL_FILE)).unwrap();
        let first_len = {
            let (records, prefix) = scan(&full);
            assert_eq!(records.len(), 2);
            assert_eq!(prefix, full.len());
            // Recompute the boundary after record 0.
            let len0 = u32::from_le_bytes(full[0..4].try_into().unwrap()) as usize;
            8 + len0
        };
        for cut in 0..=full.len() {
            let case = tmp_dir(&format!("cut{cut}"));
            fs::write(case.join(WAL_FILE), &full[..cut]).unwrap();
            let (_, replay) = Wal::open(&case).expect("truncation must never error");
            let expect_records = usize::from(cut >= first_len) + usize::from(cut >= full.len());
            assert_eq!(
                replay.records.len(),
                expect_records,
                "cut at {cut}: wrong survivor count"
            );
            let boundary = cut == first_len || cut == full.len() || cut == 0;
            assert_eq!(
                replay.corrupt, !boundary,
                "cut at {cut}: corrupt flag must mean dropped bytes"
            );
            // The truncated file is clean: reopening reports no
            // corruption and appending works.
            let (mut wal, replay2) = Wal::open(&case).unwrap();
            assert!(!replay2.corrupt, "cut at {cut}: second open must be clean");
            wal.append(&rec(9)).unwrap();
            let (_, replay3) = Wal::open(&case).unwrap();
            assert_eq!(replay3.records.len(), expect_records + 1);
            let _ = fs::remove_dir_all(&case);
        }
        // Garbage suffix (wrong CRC) rather than truncation.
        let mut garbled = full.clone();
        let last = garbled.len() - 1;
        garbled[last] ^= 0xff;
        let case = tmp_dir("garbled");
        fs::write(case.join(WAL_FILE), &garbled).unwrap();
        let (_, replay) = Wal::open(&case).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.corrupt);
        let _ = fs::remove_dir_all(&case);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewrite_compacts_and_reopens_cleanly() {
        let dir = tmp_dir("rewrite");
        let (mut wal, _) = Wal::open(&dir).unwrap();
        for i in 0..10 {
            wal.append(&rec(i)).unwrap();
        }
        assert_eq!(wal.records_since_open(), 10);
        wal.rewrite(&[rec(8), rec(9)]).unwrap();
        assert_eq!(wal.records_since_open(), 2);
        wal.append(&rec(10)).unwrap();
        let (_, replay) = Wal::open(&dir).unwrap();
        assert!(!replay.corrupt);
        let indices: Vec<u64> = replay
            .records
            .iter()
            .filter_map(|r| r.get("index").and_then(Json::as_u64))
            .collect();
        assert_eq!(indices, vec![8, 9, 10]);
        let _ = fs::remove_dir_all(&dir);
    }
}
