//! A bounded, exhaustive impossibility result for register-only
//! consensus (supporting Theorem 5's first case).
//!
//! The classical theorem — registers cannot implement 2-process wait-free
//! consensus \[4,6,14\] — quantifies over *all* protocols and cannot be
//! checked by enumeration. What **can** be machine-proved is its
//! restriction to a bounded protocol family, and this module does so for
//! the natural one-round family:
//!
//! > Each process owns one SRSW boolean register. It performs its write
//! > (of its input) and its read (of the other's register) in either
//! > order, then decides by an arbitrary boolean function of its input
//! > and the value it read.
//!
//! There are `2 · 16` choices per process — order × decision table —
//! giving `1024` candidate protocols. [`search_one_round_protocols`]
//! model-checks **every candidate against every input vector and every
//! schedule** and reports the survivors. The classical theorem predicts
//! zero; the search confirms it, making the impossibility *exhaustively
//! verified* on this family rather than cited.

use std::sync::Arc;

use wfc_explorer::program::{BinOp, ProgramBuilder};
use wfc_explorer::{explore, ExploreOptions, ExplorerError, ObjectInstance, Progress, System};
use wfc_spec::{canonical, PortId};

/// The sweep-level control poll, once per candidate pair: each inner
/// exploration is tiny, so the sweep loop is the sync point that bounds
/// cancellation latency. Progress is reported on the `steps` axis
/// (explorations performed so far).
fn sweep_poll(opts: &ExploreOptions, explorations: usize) -> Result<(), ExplorerError> {
    let progress = Progress {
        steps: explorations as u64,
        ..Progress::default()
    };
    if opts.cancel.is_cancelled() {
        progress.record();
        return Err(ExplorerError::Cancelled { progress });
    }
    if let Some(e) = opts.budget.wall_exceeded(progress) {
        return Err(ExplorerError::Exhausted(e));
    }
    Ok(())
}

/// One process's strategy in the one-round family.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Strategy {
    /// `true`: write before reading; `false`: read before writing.
    pub write_first: bool,
    /// `decide[own][read]` ∈ {0, 1}: the decision table.
    pub decide: [[u8; 2]; 2],
}

impl Strategy {
    /// Enumerates all 32 strategies.
    pub fn all() -> Vec<Strategy> {
        let mut out = Vec::with_capacity(32);
        for write_first in [false, true] {
            for table in 0u8..16 {
                let bit = |k: u8| (table >> k) & 1;
                out.push(Strategy {
                    write_first,
                    decide: [[bit(0), bit(1)], [bit(2), bit(3)]],
                });
            }
        }
        out
    }
}

/// The result of the exhaustive one-round search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Number of candidate protocols examined.
    pub candidates: usize,
    /// Strategy pairs that satisfied agreement + validity + wait-freedom
    /// on every schedule of every input vector. The classical
    /// impossibility predicts this is empty.
    pub survivors: Vec<(Strategy, Strategy)>,
    /// Total exhaustive explorations performed.
    pub explorations: usize,
}

fn build_system(s0: Strategy, s1: Strategy, inputs: [bool; 2]) -> System {
    let reg = Arc::new(canonical::boolean_register(2));
    let v0 = reg.state_id("v0").unwrap();
    // announce[p] written by p (port 0), read by 1-p (port 1).
    let announce = |p: usize| {
        let mut ports = vec![None, None];
        ports[p] = Some(PortId::new(0));
        ports[1 - p] = Some(PortId::new(1));
        ObjectInstance::new(Arc::clone(&reg), v0, ports)
    };
    let read = reg.invocation_id("read").unwrap().index() as i64;
    let program = |me: usize, s: Strategy, input: bool| {
        let write = reg
            .invocation_id(if input { "write1" } else { "write0" })
            .unwrap()
            .index() as i64;
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        if s.write_first {
            b.invoke(me as i64, write, None);
            b.invoke(1 - me as i64, read, Some(r));
        } else {
            b.invoke(1 - me as i64, read, Some(r));
            b.invoke(me as i64, write, None);
        }
        // decide = table[own][r]: responses "0"/"1" are indices 0/1, so
        // decide = d0 + r * (d1 - d0) where d_b = decide[own][b].
        let own = usize::from(input);
        let d0 = i64::from(s.decide[own][0]);
        let d1 = i64::from(s.decide[own][1]);
        let dec = b.var("dec");
        b.compute(dec, r, BinOp::Mul, d1 - d0);
        b.compute(dec, dec, BinOp::Add, d0);
        b.ret(dec);
        b.build().expect("well-formed one-round program")
    };
    System::new(
        vec![announce(0), announce(1)],
        vec![program(0, s0, inputs[0]), program(1, s1, inputs[1])],
    )
}

/// Checks one strategy pair against every input vector and schedule.
fn pair_is_consensus(
    s0: Strategy,
    s1: Strategy,
    opts: &ExploreOptions,
    explorations: &mut usize,
) -> Result<bool, ExplorerError> {
    for mask in 0..4u8 {
        let inputs = [mask & 1 != 0, mask & 2 != 0];
        let system = build_system(s0, s1, inputs);
        *explorations += 1;
        let e = explore(&system, opts)?;
        let allowed: Vec<i64> = inputs.iter().map(|&b| i64::from(b)).collect();
        if !e.decisions_agree() || !e.decisions_within(&allowed) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Exhaustively searches the one-round family for a correct register-only
/// consensus protocol.
///
/// # Errors
///
/// Propagates exploration failures (none occur for this family: every
/// candidate is trivially wait-free, being straight-line).
pub fn search_one_round_protocols(opts: &ExploreOptions) -> Result<SearchOutcome, ExplorerError> {
    let _span =
        wfc_obs::span::enter_if(opts.obs.spans, "search_one_round_protocols", String::new());
    let strategies = Strategy::all();
    let mut survivors = Vec::new();
    let mut explorations = 0;
    let mut candidates = 0;
    for &s0 in &strategies {
        for &s1 in &strategies {
            sweep_poll(opts, explorations)?;
            candidates += 1;
            if pair_is_consensus(s0, s1, opts, &mut explorations)? {
                survivors.push((s0, s1));
            }
        }
    }
    if opts.obs.metrics {
        let reg = wfc_obs::metrics::Registry::global();
        reg.counter("hierarchy.candidates").add(candidates as u64);
        reg.counter("hierarchy.explorations")
            .add(explorations as u64);
    }
    Ok(SearchOutcome {
        candidates,
        survivors,
        explorations,
    })
}

/// One process's strategy in the *two-read* family: a write of its input
/// and **two** reads of the peer's register, in any of the three
/// arrangements, deciding by an arbitrary function of (input, r₁, r₂).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TwoReadStrategy {
    /// Position of the write among the three operations (0, 1 or 2).
    pub write_pos: u8,
    /// `decide[own][r1][r2]` ∈ {0, 1}.
    pub decide: [[[u8; 2]; 2]; 2],
}

impl TwoReadStrategy {
    /// Enumerates all `3 · 2^8 = 768` strategies.
    pub fn all() -> Vec<TwoReadStrategy> {
        let mut out = Vec::with_capacity(768);
        for write_pos in 0..3u8 {
            for table in 0u16..256 {
                let bit = |k: u16| ((table >> k) & 1) as u8;
                let mut decide = [[[0u8; 2]; 2]; 2];
                #[allow(clippy::needless_range_loop)] // mirrors decide[own][r1][r2]
                for own in 0..2 {
                    for r1 in 0..2 {
                        for r2 in 0..2 {
                            decide[own][r1][r2] = bit((own * 4 + r1 * 2 + r2) as u16);
                        }
                    }
                }
                out.push(TwoReadStrategy { write_pos, decide });
            }
        }
        out
    }
}

fn build_two_read_system(s0: TwoReadStrategy, s1: TwoReadStrategy, inputs: [bool; 2]) -> System {
    let reg = Arc::new(canonical::boolean_register(2));
    let v0 = reg.state_id("v0").unwrap();
    let announce = |p: usize| {
        let mut ports = vec![None, None];
        ports[p] = Some(PortId::new(0));
        ports[1 - p] = Some(PortId::new(1));
        ObjectInstance::new(Arc::clone(&reg), v0, ports)
    };
    let read = reg.invocation_id("read").unwrap().index() as i64;
    let program = |me: usize, s: TwoReadStrategy, input: bool| {
        let write = reg
            .invocation_id(if input { "write1" } else { "write0" })
            .unwrap()
            .index() as i64;
        let mut b = ProgramBuilder::new();
        let r1 = b.var("r1");
        let r2 = b.var("r2");
        let mut read_slot = 0;
        for pos in 0..3 {
            if pos == s.write_pos {
                b.invoke(me as i64, write, None);
            } else {
                let dst = if read_slot == 0 { r1 } else { r2 };
                b.invoke(1 - me as i64, read, Some(dst));
                read_slot += 1;
            }
        }
        // dec = Σ_{i,j} [r1 == i][r2 == j] · decide[own][i][j], as
        // straight-line arithmetic over the 0/1-valued reads.
        let own = usize::from(input);
        let t = s.decide[own];
        let dec = b.var("dec");
        let term = b.var("term");
        b.copy(dec, 0_i64);
        #[allow(clippy::needless_range_loop)] // mirrors t[i][j]
        for i in 0..2usize {
            for j in 0..2usize {
                if t[i][j] == 0 {
                    continue;
                }
                // term = [r1 == i] · [r2 == j]
                let f1 = b.var("f1");
                let f2 = b.var("f2");
                b.compute(f1, r1, BinOp::Eq, i as i64);
                b.compute(f2, r2, BinOp::Eq, j as i64);
                b.compute(term, f1, BinOp::Mul, f2);
                b.compute(dec, dec, BinOp::Add, term);
            }
        }
        b.ret(dec);
        b.build().expect("well-formed two-read program")
    };
    System::new(
        vec![announce(0), announce(1)],
        vec![program(0, s0, inputs[0]), program(1, s1, inputs[1])],
    )
}

/// The result of the two-read exhaustive search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TwoReadOutcome {
    /// Candidate protocols examined (`768² = 589 824`).
    pub candidates: usize,
    /// Candidates satisfying consensus on every schedule of every input
    /// vector. The classical impossibility predicts zero.
    pub survivor_count: usize,
    /// Total exhaustive explorations performed (early termination per
    /// candidate on the first failing vector).
    pub explorations: usize,
}

/// Exhaustively searches the two-read family (`768² = 589 824` candidate
/// protocols) for a correct register-only consensus. The classical
/// impossibility predicts zero survivors. Expensive (minutes in debug,
/// tens of seconds in release); exercised by the `--ignored` test
/// `no_two_read_register_protocol_solves_consensus`.
///
/// # Errors
///
/// Propagates exploration failures.
pub fn search_two_read_protocols(opts: &ExploreOptions) -> Result<TwoReadOutcome, ExplorerError> {
    let strategies = TwoReadStrategy::all();
    let mut survivor_count = 0usize;
    let mut explorations = 0usize;
    let mut candidates = 0usize;
    for &s0 in &strategies {
        for &s1 in &strategies {
            sweep_poll(opts, explorations)?;
            candidates += 1;
            let mut ok = true;
            for mask in 0..4u8 {
                let inputs = [mask & 1 != 0, mask & 2 != 0];
                let system = build_two_read_system(s0, s1, inputs);
                explorations += 1;
                let e = explore(&system, opts)?;
                let allowed: Vec<i64> = inputs.iter().map(|&b| i64::from(b)).collect();
                if !e.decisions_agree() || !e.decisions_within(&allowed) {
                    ok = false;
                    break;
                }
            }
            if ok {
                survivor_count += 1;
            }
        }
    }
    Ok(TwoReadOutcome {
        candidates,
        survivor_count,
        explorations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_enumeration_is_complete_and_distinct() {
        let all = Strategy::all();
        assert_eq!(all.len(), 32);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    /// The machine-checked impossibility: no one-round register protocol
    /// solves 2-process consensus — all 1024 candidates refuted on some
    /// schedule.
    #[test]
    fn no_one_round_register_protocol_solves_consensus() {
        let outcome = search_one_round_protocols(&ExploreOptions::default()).unwrap();
        assert_eq!(outcome.candidates, 1024);
        assert!(
            outcome.survivors.is_empty(),
            "registers solved consensus?! {:?}",
            outcome.survivors
        );
        assert!(
            outcome.explorations >= 1024,
            "each pair explored at least once"
        );
    }

    #[test]
    fn two_read_strategy_enumeration_is_complete() {
        let all = TwoReadStrategy::all();
        assert_eq!(all.len(), 768);
    }

    /// A two-read candidate with a sensible-looking rule still fails —
    /// spot check before the exhaustive (ignored) sweep.
    #[test]
    fn two_read_spot_check_fails() {
        // Write first, then read twice; decide the second read if the
        // two reads agree and are "set", else own value. Plausible and
        // wrong.
        let mut decide = [[[0u8; 2]; 2]; 2];
        #[allow(clippy::needless_range_loop)] // mirrors decide[own][r1][r2]
        for own in 0..2 {
            for r1 in 0..2 {
                for r2 in 0..2 {
                    decide[own][r1][r2] = if r1 == 1 && r2 == 1 { 1 } else { own as u8 };
                }
            }
        }
        let s = TwoReadStrategy {
            write_pos: 0,
            decide,
        };
        let opts = ExploreOptions::default();
        let mut bad = false;
        for mask in 0..4u8 {
            let inputs = [mask & 1 != 0, mask & 2 != 0];
            let system = build_two_read_system(s, s, inputs);
            let e = explore(&system, &opts).unwrap();
            let allowed: Vec<i64> = inputs.iter().map(|&b| i64::from(b)).collect();
            if !e.decisions_agree() || !e.decisions_within(&allowed) {
                bad = true;
            }
        }
        assert!(bad, "the plausible rule must fail on some vector");
    }

    /// The full two-read sweep: 589 824 candidates, zero survivors.
    /// Run with `cargo test --release -p wfc-hierarchy -- --ignored`.
    #[test]
    #[ignore = "minutes-long exhaustive sweep; run with --ignored in release"]
    fn no_two_read_register_protocol_solves_consensus() {
        let outcome = search_two_read_protocols(&ExploreOptions::default()).unwrap();
        assert_eq!(outcome.candidates, 768 * 768);
        assert_eq!(outcome.survivor_count, 0, "{outcome:?}");
    }

    /// Sanity: a strategy pair *almost* works — write-first with
    /// "decide own input" passes the equal-input vectors and only dies on
    /// mixed ones. This guards the checker against vacuous refutation.
    #[test]
    fn equal_inputs_alone_do_not_refute() {
        let own_value = Strategy {
            write_first: true,
            decide: [[0, 0], [1, 1]],
        };
        let opts = ExploreOptions::default();
        for inputs in [[false, false], [true, true]] {
            let system = build_system(own_value, own_value, inputs);
            let e = explore(&system, &opts).unwrap();
            assert!(e.decisions_agree(), "equal inputs must agree");
        }
        let system = build_system(own_value, own_value, [false, true]);
        let e = explore(&system, &opts).unwrap();
        assert!(!e.decisions_agree(), "mixed inputs expose the flaw");
    }
}
