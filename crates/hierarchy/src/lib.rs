//! # `wfc-hierarchy` — Jayanti's four wait-free hierarchies, certified
//!
//! The paper's results live in the landscape of Jayanti's hierarchies
//! `h_1`, `h_1^r`, `h_m`, `h_m^r` (Section 2.3). This crate makes that
//! landscape concrete:
//!
//! * [`Hierarchy`], [`Level`], [`HierarchyValue`] — evidence-carrying
//!   hierarchy positions (checked lower bounds, checked-or-cited upper
//!   bounds).
//! * [`catalog`] — certified values for the canonical type zoo. Scanning
//!   the `h_m` and `h_m^r` columns exhibits the paper's headline:
//!   **they coincide on every deterministic type** (Theorem 5), with the
//!   `h_m ≥ 2` lower bounds witnessed by the register-free protocols the
//!   Theorem 5 compiler produces.
//! * [`verify_entry`] — re-runs the model checks behind every
//!   `Checked` bound.
//! * [`robustness`] — the robustness audit: no construction in this
//!   repository builds a strong type from strictly weaker ones, matching
//!   the corollary (paper Section 6 + \[17\]) that `h_m` is robust for
//!   deterministic types.
//!
//! On Jayanti's separating type: the paper *cites* (from \[9\]) a
//! nondeterministic type with `h_m(T) = 1 < h_m^r(T)` to show its
//! determinism hypothesis is necessary, but does not construct it; that
//! construction belongs to \[9\] and is out of scope here (see DESIGN.md).
//! What this crate checks instead is the paper's own regularity claims
//! over the catalog: determinism ⇒ `h_m = h_m^r`, and agreement of the
//! two hierarchies everywhere above level 1.
//!
//! ## Example
//!
//! ```
//! use wfc_hierarchy::{catalog, Hierarchy, Level};
//!
//! let rows = catalog();
//! for row in &rows {
//!     if row.ty.is_deterministic() {
//!         assert_eq!(
//!             row.value(Hierarchy::HM).exact(),
//!             row.value(Hierarchy::HMR).exact(),
//!             "Theorem 5",
//!         );
//!     }
//! }
//! let cas = rows.iter().find(|r| r.ty.name().starts_with("compare_and_swap")).unwrap();
//! assert_eq!(cas.value(Hierarchy::H1).exact(), Some(Level::Infinite));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod catalog;
pub mod families;
pub mod impossibility;
mod level;
pub mod robustness;

pub use catalog::{catalog, identity_consensus_system, verify_entry, CatalogEntry};
pub use level::{Evidence, Hierarchy, HierarchyValue, Level};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::CatalogEntry>();
        assert_send_sync::<crate::HierarchyValue>();
    }
}
