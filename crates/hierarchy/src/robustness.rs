//! Robustness of the wait-free hierarchies (paper, Sections 2.3 and 6).
//!
//! A hierarchy `h` is *robust* if no collection of types strictly below
//! level `n` can implement a type at level `n` — weak types cannot be
//! combined into a strong one. Jayanti \[9\] showed that of his four
//! hierarchies only `h_m^r` could possibly be robust, and left its
//! robustness open; the companion paper \[17\] proved `h_m^r` robust for
//! deterministic types; and **this** paper's Theorem 5 (`h_m = h_m^r`
//! for deterministic types) transfers that robustness to `h_m`.
//!
//! Robustness itself quantifies over all implementations and is not
//! decidable from a finite catalog; what this module offers is the
//! *audit*: [`check_no_weak_to_strong`] scans the certified catalog for a
//! counterexample among the implementations this repository actually
//! constructs — every construction must map types to targets at or below
//! their own level.

use crate::catalog::CatalogEntry;
use crate::level::Level;

/// One concrete implementation relationship this repository constructs:
/// `target` is implemented from objects of the types named in `from`.
#[derive(Clone, Debug)]
pub struct ImplementationFact {
    /// Name of the implemented type (or "consensus{n}" for a consensus
    /// object).
    pub target: &'static str,
    /// The consensus level the target certifies.
    pub target_level: Level,
    /// The source types used.
    pub from: Vec<&'static str>,
    /// Where the implementation lives.
    pub witness: &'static str,
}

/// The implementation facts established by this repository's
/// model-checked constructions.
pub fn implementation_facts() -> Vec<ImplementationFact> {
    vec![
        ImplementationFact {
            target: "consensus2",
            target_level: Level::Finite(2),
            from: vec!["test_and_set"],
            witness: "wfc-core::check_theorem5 (register-free TAS-only output)",
        },
        ImplementationFact {
            target: "consensus2",
            target_level: Level::Finite(2),
            from: vec!["queue1x1"],
            witness: "wfc-core::check_theorem5 (register-free queue-only output)",
        },
        ImplementationFact {
            target: "consensus2",
            target_level: Level::Finite(2),
            from: vec!["fetch_and_add2"],
            witness: "wfc-core::check_theorem5 (register-free fetch-and-add-only output)",
        },
        ImplementationFact {
            target: "consensus2",
            target_level: Level::Finite(2),
            from: vec!["stack1x1"],
            witness: "wfc-core::check_theorem5 (register-free stack-only output)",
        },
        ImplementationFact {
            target: "consensus2",
            target_level: Level::Finite(2),
            from: vec!["swap2"],
            witness: "wfc-core::check_theorem5 (register-free swap-only output)",
        },
        ImplementationFact {
            target: "consensus3",
            target_level: Level::Finite(3),
            from: vec!["compare_and_swap3"],
            witness: "wfc-consensus::cas_consensus_system, model-checked",
        },
        ImplementationFact {
            target: "consensus3",
            target_level: Level::Finite(3),
            from: vec!["sticky_bit"],
            witness: "wfc-consensus::sticky_consensus_system, model-checked",
        },
    ]
}

/// Audits the catalog against the implementation facts: returns the list
/// of facts that would *violate* robustness of `h_m` — a target above
/// every source type's certified `h_m` upper bound. Robustness of `h_m`
/// for deterministic types (Theorem 5 + \[17\]) predicts the result is
/// empty.
pub fn check_no_weak_to_strong(
    catalog: &[CatalogEntry],
    facts: &[ImplementationFact],
) -> Vec<ImplementationFact> {
    facts
        .iter()
        .filter(|fact| {
            fact.from.iter().all(|src| {
                catalog
                    .iter()
                    .find(|e| e.ty.name() == *src)
                    .is_some_and(|e| e.hm.upper < fact.target_level)
            })
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::catalog;

    #[test]
    fn no_construction_violates_robustness() {
        let violations = check_no_weak_to_strong(&catalog(), &implementation_facts());
        assert!(
            violations.is_empty(),
            "weak-to-strong constructions found: {violations:?}"
        );
    }

    #[test]
    fn facts_reference_catalogued_types() {
        let cat = catalog();
        for f in implementation_facts() {
            for src in &f.from {
                assert!(
                    cat.iter().any(|e| e.ty.name() == *src),
                    "unknown source type {src}"
                );
            }
        }
    }

    #[test]
    fn a_hypothetical_violation_is_detected() {
        // If someone claimed to build 3-process consensus from
        // test-and-set objects alone, the audit must flag it (TAS has
        // h_m upper bound 2).
        let bogus = ImplementationFact {
            target: "consensus3",
            target_level: Level::Finite(3),
            from: vec!["test_and_set"],
            witness: "bogus",
        };
        let violations = check_no_weak_to_strong(&catalog(), &[bogus]);
        assert_eq!(violations.len(), 1);
    }
}
