//! A certified catalog of hierarchy values for the canonical type zoo.
//!
//! Every entry records the type's position in Jayanti's four hierarchies
//! (`h_1`, `h_1^r`, `h_m`, `h_m^r`) as an evidence-carrying interval.
//! Lower bounds marked [`Evidence::Checked`] are re-established by
//! [`verify_entry`], which model-checks the corresponding protocols —
//! including the register-free ones produced by the Theorem 5 compiler,
//! which is how `h_m ≥ 2` is witnessed for test-and-set, queue and
//! fetch-and-add *without* registers.
//!
//! The headline regularity, visible by scanning the table: for every
//! deterministic type, `h_m = h_m^r` (Theorem 5); and wherever either
//! exceeds 1 they agree even for nondeterministic types (Section 5.3).

use std::sync::Arc;

use wfc_spec::{canonical, FiniteType};

use crate::level::{Evidence, Hierarchy, HierarchyValue, Level};

/// One catalog row: a type and its four certified hierarchy values.
#[derive(Clone, Debug)]
pub struct CatalogEntry {
    /// The type (a small-arity representative of the family; the recorded
    /// levels refer to the unbounded-port family).
    pub ty: Arc<FiniteType>,
    /// `h_1`: one object, no registers.
    pub h1: HierarchyValue,
    /// `h_1^r`: one object plus registers (Herlihy's consensus number).
    pub h1r: HierarchyValue,
    /// `h_m`: many objects, no registers.
    pub hm: HierarchyValue,
    /// `h_m^r`: many objects plus registers.
    pub hmr: HierarchyValue,
    /// Context for the recorded values.
    pub notes: &'static str,
}

impl CatalogEntry {
    /// The value in the given hierarchy.
    pub fn value(&self, h: Hierarchy) -> &HierarchyValue {
        match h {
            Hierarchy::H1 => &self.h1,
            Hierarchy::H1R => &self.h1r,
            Hierarchy::HM => &self.hm,
            Hierarchy::HMR => &self.hmr,
        }
    }
}

fn lv(n: u32) -> Level {
    Level::Finite(n)
}

fn def1() -> HierarchyValue {
    HierarchyValue::exactly(
        lv(1),
        Evidence::ByDefinition,
        Evidence::Cited {
            source: "registers cannot solve 2-process consensus [4,6,14]; the type adds nothing",
        },
    )
}

fn exact_checked(n: u32, check: &'static str, upper: &'static str) -> HierarchyValue {
    HierarchyValue::exactly(
        lv(n),
        Evidence::Checked { check },
        Evidence::Cited { source: upper },
    )
}

/// Exactly level 1 because the type is trivial — the upper bound is
/// machine-checked (triviality ⇒ locally simulable, Theorem 5 first case).
fn trivial1() -> HierarchyValue {
    HierarchyValue::exactly(
        lv(1),
        Evidence::ByDefinition,
        Evidence::Checked {
            check: "trivial (single reachable response per port history): \
                    wfc_spec::triviality::is_trivial",
        },
    )
}

const ASPNES_SHIFT: &str =
    "Aspnes 2025 (arXiv:2507.01955): the consensus number of a w-bit shift register is exactly w";

const MPR_WINDOW: &str = "Mostéfaoui–Perrin–Raynal, DISC 2018: the k-sliding-window register \
                          has consensus number exactly k";

/// The certified catalog.
pub fn catalog() -> Vec<CatalogEntry> {
    let herlihy_2 = "Herlihy [7]: read-modify-write objects on two values have consensus number 2";
    vec![
        CatalogEntry {
            ty: Arc::new(canonical::boolean_register(2)),
            h1: def1(),
            h1r: def1(),
            hm: def1(),
            hmr: def1(),
            notes: "registers cannot implement 2-process consensus; machine-evidenced by the \
                    bivalence analysis of candidate protocols (wfc-explorer::bivalence)",
        },
        CatalogEntry {
            ty: Arc::new(canonical::test_and_set(2)),
            h1: HierarchyValue {
                lower: lv(1),
                lower_evidence: Evidence::ByDefinition,
                upper: lv(2),
                upper_evidence: Evidence::Cited { source: herlihy_2 },
            },
            h1r: exact_checked(
                2,
                "tas_consensus_system model-checked for 2 processes",
                herlihy_2,
            ),
            hm: exact_checked(
                2,
                "Theorem 5 compiler output: register-free TAS-only consensus, model-checked",
                herlihy_2,
            ),
            hmr: exact_checked(2, "tas_consensus_system model-checked", herlihy_2),
            notes: "the paper's Theorem 5 pins h_m = h_m^r = 2; h_1 = 1 is folklore (a lone \
                    test-and-set cannot carry the winner's input) but not re-proved here",
        },
        CatalogEntry {
            ty: Arc::new(canonical::queue(1, 1, 2)),
            h1: HierarchyValue {
                lower: lv(1),
                lower_evidence: Evidence::ByDefinition,
                upper: lv(2),
                upper_evidence: Evidence::Cited {
                    source: "Herlihy [7], queues",
                },
            },
            h1r: exact_checked(
                2,
                "queue_consensus_system model-checked for 2 processes",
                "Herlihy [7]: FIFO queues have consensus number 2",
            ),
            hm: exact_checked(
                2,
                "Theorem 5 compiler output: register-free queue-only consensus, model-checked",
                "Herlihy [7]",
            ),
            hmr: exact_checked(2, "queue_consensus_system model-checked", "Herlihy [7]"),
            notes: "pre-filled single-token queue; h_m = h_m^r by Theorem 5",
        },
        CatalogEntry {
            ty: Arc::new(canonical::stack(1, 1, 2)),
            h1: HierarchyValue {
                lower: lv(1),
                lower_evidence: Evidence::ByDefinition,
                upper: lv(2),
                upper_evidence: Evidence::Cited {
                    source: "Herlihy [7], stacks",
                },
            },
            h1r: exact_checked(
                2,
                "stack_consensus_system model-checked for 2 processes",
                "Herlihy [7]: stacks have consensus number 2",
            ),
            hm: exact_checked(
                2,
                "Theorem 5 compiler output: register-free stack-only consensus, model-checked",
                "Herlihy [7]",
            ),
            hmr: exact_checked(2, "stack_consensus_system model-checked", "Herlihy [7]"),
            notes: "pre-filled single-token stack; h_m = h_m^r by Theorem 5",
        },
        CatalogEntry {
            ty: Arc::new(canonical::swap(2, 2)),
            h1: HierarchyValue {
                lower: lv(1),
                lower_evidence: Evidence::ByDefinition,
                upper: lv(2),
                upper_evidence: Evidence::Cited { source: herlihy_2 },
            },
            h1r: exact_checked(2, "swap_consensus_system model-checked", herlihy_2),
            hm: exact_checked(
                2,
                "Theorem 5 compiler output: register-free swap-only consensus",
                herlihy_2,
            ),
            hmr: exact_checked(2, "swap_consensus_system model-checked", herlihy_2),
            notes: "read-modify-write exchange; h_m = h_m^r by Theorem 5",
        },
        CatalogEntry {
            ty: Arc::new(canonical::fetch_and_add(2, 2)),
            h1: HierarchyValue {
                lower: lv(1),
                lower_evidence: Evidence::ByDefinition,
                upper: lv(2),
                upper_evidence: Evidence::Cited { source: herlihy_2 },
            },
            h1r: exact_checked(2, "fetch_add_consensus_system model-checked", herlihy_2),
            hm: exact_checked(
                2,
                "Theorem 5 compiler output: register-free fetch-and-add-only consensus",
                herlihy_2,
            ),
            hmr: exact_checked(2, "fetch_add_consensus_system model-checked", herlihy_2),
            notes: "saturating counter; h_m = h_m^r by Theorem 5",
        },
        CatalogEntry {
            ty: Arc::new(canonical::compare_and_swap(3, 3)),
            h1: HierarchyValue::exactly(
                Level::Infinite,
                Evidence::Checked {
                    check: "cas_consensus_system model-checked register-free for n ≤ 3; the \
                            protocol is uniform in n",
                },
                Evidence::ByDefinition,
            ),
            h1r: HierarchyValue::exactly(
                Level::Infinite,
                Evidence::Cited {
                    source: "Herlihy [7]: compare-and-swap is universal",
                },
                Evidence::ByDefinition,
            ),
            hm: HierarchyValue::exactly(
                Level::Infinite,
                Evidence::Checked {
                    check: "cas_consensus_system, register-free",
                },
                Evidence::ByDefinition,
            ),
            hmr: HierarchyValue::exactly(
                Level::Infinite,
                Evidence::Cited {
                    source: "Herlihy [7]",
                },
                Evidence::ByDefinition,
            ),
            notes: "universal: one object suffices at every level",
        },
        CatalogEntry {
            ty: Arc::new(canonical::sticky_bit(3)),
            h1: HierarchyValue::exactly(
                Level::Infinite,
                Evidence::Checked {
                    check: "sticky_consensus_system model-checked register-free for n ≤ 3; \
                            uniform in n",
                },
                Evidence::ByDefinition,
            ),
            h1r: HierarchyValue::exactly(
                Level::Infinite,
                Evidence::Cited {
                    source: "Plotkin [19]: sticky bits are universal",
                },
                Evidence::ByDefinition,
            ),
            hm: HierarchyValue::exactly(
                Level::Infinite,
                Evidence::Checked {
                    check: "sticky_consensus_system, register-free",
                },
                Evidence::ByDefinition,
            ),
            hmr: HierarchyValue::exactly(
                Level::Infinite,
                Evidence::Cited {
                    source: "Plotkin [19]",
                },
                Evidence::ByDefinition,
            ),
            notes: "writes double as proposals, so the bit is a reusable consensus object",
        },
        CatalogEntry {
            ty: Arc::new(canonical::consensus(2)),
            h1: exact_checked(
                2,
                "the identity protocol on one T_{c,2} object, model-checked",
                "a 2-port type has level ≤ 2 (paper, Section 2.3)",
            ),
            h1r: exact_checked(2, "identity protocol", "2 ports"),
            hm: exact_checked(2, "identity protocol", "2 ports"),
            hmr: exact_checked(2, "identity protocol", "2 ports"),
            notes: "the consensus type itself; T_{c,n} sits at level n of every hierarchy",
        },
        CatalogEntry {
            ty: Arc::new(canonical::mute(2)),
            h1: def1(),
            h1r: def1(),
            hm: def1(),
            hmr: def1(),
            notes: "trivial (|R| = 1): locally simulable, so it adds nothing to registers — \
                    Theorem 5, first case; triviality is machine-checked",
        },
        CatalogEntry {
            ty: Arc::new(canonical::one_use_bit()),
            h1: def1(),
            h1r: def1(),
            hm: def1(),
            hmr: def1(),
            notes: "nondeterministic and strictly weaker than a register (one read, one \
                    write); the paper notes such types cannot reach level 2 with or without \
                    registers — values cited, not re-proved",
        },
        CatalogEntry {
            ty: Arc::new(canonical::shift_register(1, 2)),
            h1: trivial1(),
            h1r: trivial1(),
            hm: trivial1(),
            hmr: trivial1(),
            notes: "a 1-bit shift register is trivial: every shift returns \"0\", so it is \
                    locally simulable (Theorem 5, first case; triviality machine-checked); \
                    base case of Aspnes's h(shift_w) = w",
        },
        CatalogEntry {
            ty: Arc::new(canonical::shift_register(2, 2)),
            h1: HierarchyValue {
                lower: lv(1),
                lower_evidence: Evidence::ByDefinition,
                upper: lv(2),
                upper_evidence: Evidence::Cited {
                    source: ASPNES_SHIFT,
                },
            },
            h1r: exact_checked(
                2,
                "shift2_consensus_system model-checked for 2 processes",
                ASPNES_SHIFT,
            ),
            hm: exact_checked(
                2,
                "Theorem 5 compiler output: register-free shift-register-only consensus, \
                 model-checked",
                ASPNES_SHIFT,
            ),
            hmr: exact_checked(2, "shift2_consensus_system model-checked", ASPNES_SHIFT),
            notes: "shl/shr return the new contents, so the 2-bit instance decides races \
                    (init \"01\": left-winner sees \"10\", right-winner sees \"00\"); \
                    h_m = h_m^r by Theorem 5; 3-process impossibility swept in \
                    wfc-hierarchy::families",
        },
        CatalogEntry {
            ty: Arc::new(canonical::mpr(1, 2)),
            h1: HierarchyValue::exactly(
                lv(1),
                Evidence::ByDefinition,
                Evidence::Cited { source: MPR_WINDOW },
            ),
            h1r: HierarchyValue::exactly(
                lv(1),
                Evidence::ByDefinition,
                Evidence::Cited { source: MPR_WINDOW },
            ),
            hm: HierarchyValue::exactly(
                lv(1),
                Evidence::ByDefinition,
                Evidence::Cited { source: MPR_WINDOW },
            ),
            hmr: HierarchyValue::exactly(
                lv(1),
                Evidence::ByDefinition,
                Evidence::Cited { source: MPR_WINDOW },
            ),
            notes: "with window size 1 the object is an atomic read/write register over \
                    {0,1} plus an initial empty value, so it sits at level 1 like any \
                    register",
        },
        CatalogEntry {
            ty: Arc::new(canonical::mpr(2, 2)),
            h1: HierarchyValue {
                lower: lv(1),
                lower_evidence: Evidence::ByDefinition,
                upper: lv(2),
                upper_evidence: Evidence::Cited { source: MPR_WINDOW },
            },
            h1r: exact_checked(
                2,
                "mpr2_consensus_system model-checked for 2 processes",
                MPR_WINDOW,
            ),
            hm: exact_checked(
                2,
                "Theorem 5 compiler output: register-free sliding-window-only consensus, \
                 model-checked",
                MPR_WINDOW,
            ),
            hmr: exact_checked(2, "mpr2_consensus_system model-checked", MPR_WINDOW),
            notes: "the window's oldest entry names the first writer, so two markers decide \
                    a 2-process race; h_m = h_m^r by Theorem 5",
        },
    ]
}

/// Re-establishes every [`Evidence::Checked`] lower bound of `entry` by
/// running the corresponding model checks. Returns `false` if any check
/// fails (it never should; this is the catalog's self-test, also used by
/// the benches).
pub fn verify_entry(entry: &CatalogEntry) -> bool {
    use wfc_consensus as c;
    use wfc_explorer::ExploreOptions;
    let opts = ExploreOptions::default();
    let name = entry.ty.name();
    if name.starts_with("register") || name == "mute" || name == "one_use_bit" || name == "mpr1" {
        // Level-1 entries: nothing to run; triviality/weakness is either
        // by definition or cited.
        return if name == "mute" {
            wfc_spec::triviality::is_trivial(&entry.ty).unwrap_or(false)
        } else {
            true
        };
    }
    if name == "shift1" {
        // The level-1 upper bound rests on machine-checked triviality.
        return wfc_spec::triviality::is_trivial(&entry.ty).unwrap_or(false);
    }
    if name == "shift2" {
        let ok_h1r =
            c::verify_consensus_protocol(2, |i| c::shift2_consensus_system([i[0], i[1]]), &opts)
                .map(|v| v.holds())
                .unwrap_or(false);
        let recipe = match wfc_core::OneUseRecipe::from_type(&entry.ty) {
            Ok(r) => r,
            Err(_) => return false,
        };
        let ok_hm = wfc_core::check_theorem5(
            2,
            |i| c::shift2_consensus_system([i[0], i[1]]),
            &wfc_core::OneUseSource::Recipe(recipe),
            &opts,
        )
        .map(|cert| cert.holds())
        .unwrap_or(false);
        return ok_h1r && ok_hm;
    }
    if name == "mpr2" {
        let ok_h1r =
            c::verify_consensus_protocol(2, |i| c::mpr2_consensus_system([i[0], i[1]]), &opts)
                .map(|v| v.holds())
                .unwrap_or(false);
        let recipe = match wfc_core::OneUseRecipe::from_type(&entry.ty) {
            Ok(r) => r,
            Err(_) => return false,
        };
        let ok_hm = wfc_core::check_theorem5(
            2,
            |i| c::mpr2_consensus_system([i[0], i[1]]),
            &wfc_core::OneUseSource::Recipe(recipe),
            &opts,
        )
        .map(|cert| cert.holds())
        .unwrap_or(false);
        return ok_h1r && ok_hm;
    }
    if name == "test_and_set" {
        let ok_h1r =
            c::verify_consensus_protocol(2, |i| c::tas_consensus_system([i[0], i[1]]), &opts)
                .map(|v| v.holds())
                .unwrap_or(false);
        let recipe = match wfc_core::OneUseRecipe::from_type(&entry.ty) {
            Ok(r) => r,
            Err(_) => return false,
        };
        let ok_hm = wfc_core::check_theorem5(
            2,
            |i| c::tas_consensus_system([i[0], i[1]]),
            &wfc_core::OneUseSource::Recipe(recipe),
            &opts,
        )
        .map(|cert| cert.holds())
        .unwrap_or(false);
        return ok_h1r && ok_hm;
    }
    if name.starts_with("queue") {
        let queue_ty = Arc::new(canonical::queue(1, 1, 2));
        let recipe = match wfc_core::OneUseRecipe::from_type(&queue_ty) {
            Ok(r) => r,
            Err(_) => return false,
        };
        return wfc_core::check_theorem5(
            2,
            |i| c::queue_consensus_system([i[0], i[1]]),
            &wfc_core::OneUseSource::Recipe(recipe),
            &opts,
        )
        .map(|cert| cert.holds())
        .unwrap_or(false);
    }
    if name.starts_with("stack") {
        let recipe = match wfc_core::OneUseRecipe::from_type(&entry.ty) {
            Ok(r) => r,
            Err(_) => return false,
        };
        return wfc_core::check_theorem5(
            2,
            |i| c::stack_consensus_system([i[0], i[1]]),
            &wfc_core::OneUseSource::Recipe(recipe),
            &opts,
        )
        .map(|cert| cert.holds())
        .unwrap_or(false);
    }
    if name.starts_with("swap") {
        let recipe = match wfc_core::OneUseRecipe::from_type(&entry.ty) {
            Ok(r) => r,
            Err(_) => return false,
        };
        return wfc_core::check_theorem5(
            2,
            |i| c::swap_consensus_system([i[0], i[1]]),
            &wfc_core::OneUseSource::Recipe(recipe),
            &opts,
        )
        .map(|cert| cert.holds())
        .unwrap_or(false);
    }
    if name.starts_with("fetch_and_add") {
        let recipe = match wfc_core::OneUseRecipe::from_type(&entry.ty) {
            Ok(r) => r,
            Err(_) => return false,
        };
        return wfc_core::check_theorem5(
            2,
            |i| c::fetch_add_consensus_system([i[0], i[1]]),
            &wfc_core::OneUseSource::Recipe(recipe),
            &opts,
        )
        .map(|cert| cert.holds())
        .unwrap_or(false);
    }
    if name.starts_with("compare_and_swap") {
        return (2..=3).all(|n| {
            c::verify_consensus_protocol(n, c::cas_consensus_system, &opts)
                .map(|v| v.holds())
                .unwrap_or(false)
        });
    }
    if name == "sticky_bit" {
        return (2..=3).all(|n| {
            c::verify_consensus_protocol(n, c::sticky_consensus_system, &opts)
                .map(|v| v.holds())
                .unwrap_or(false)
        });
    }
    if name.starts_with("consensus") {
        // The identity protocol: propose directly on the object.
        return c::verify_consensus_protocol(2, identity_consensus_system, &opts)
            .map(|v| v.holds())
            .unwrap_or(false);
    }
    false
}

/// The identity implementation of consensus from a consensus object:
/// propose your input, decide the response.
pub fn identity_consensus_system(inputs: &[bool]) -> wfc_consensus::ConsensusSystem {
    use wfc_explorer::program::ProgramBuilder;
    use wfc_explorer::{ObjectInstance, System};
    let n = inputs.len();
    let ty = Arc::new(canonical::consensus(n));
    let bot = ty.state_id("⊥").unwrap();
    let objects = vec![ObjectInstance::identity_ports(Arc::clone(&ty), bot, n)];
    let programs = inputs
        .iter()
        .map(|&input| {
            let inv = ty
                .invocation_id(if input { "propose1" } else { "propose0" })
                .unwrap()
                .index() as i64;
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            b.invoke(0_i64, inv, Some(r));
            // Responses "0"/"1" are numbered 0/1: decide directly.
            b.ret(r);
            b.build().expect("well-formed")
        })
        .collect();
    wfc_consensus::ConsensusSystem {
        system: System::new(objects, programs),
        registers: Vec::new(),
        inputs: inputs.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_internally_consistent() {
        for e in catalog() {
            for h in Hierarchy::ALL {
                assert!(e.value(h).is_consistent(), "{}: {h}", e.ty.name());
            }
            // Monotonicity: h_1 ≤ h_1^r ≤ h_m^r and h_1 ≤ h_m ≤ h_m^r
            // must hold between certified bounds.
            assert!(e.h1.lower <= e.h1r.upper, "{}", e.ty.name());
            assert!(e.h1r.lower <= e.hmr.upper, "{}", e.ty.name());
            assert!(e.hm.lower <= e.hmr.upper, "{}", e.ty.name());
        }
    }

    #[test]
    fn theorem5_regularity_holds_in_the_catalog() {
        // For every deterministic type: h_m = h_m^r (Theorem 5).
        for e in catalog() {
            if e.ty.is_deterministic() {
                assert_eq!(
                    e.hm.exact(),
                    e.hmr.exact(),
                    "Theorem 5 violated in catalog for {}",
                    e.ty.name()
                );
            }
        }
    }

    #[test]
    fn above_level_one_all_recorded_values_agree() {
        // Section 5.3 consequence: if either of h_m, h_m^r exceeds 1,
        // they are equal — for all types, even nondeterministic ones.
        for e in catalog() {
            let above = |v: &HierarchyValue| v.lower > Level::Finite(1);
            if above(&e.hm) || above(&e.hmr) {
                assert_eq!(e.hm.exact(), e.hmr.exact(), "{}", e.ty.name());
            }
        }
    }

    #[test]
    fn light_entries_verify_quickly() {
        for e in catalog() {
            let name = e.ty.name().to_owned();
            if name.starts_with("register")
                || name == "mute"
                || name == "one_use_bit"
                || name == "shift1"
                || name == "mpr1"
                || name.starts_with("consensus")
            {
                assert!(verify_entry(&e), "verification failed for {name}");
            }
        }
    }

    #[test]
    fn cas_and_sticky_entries_verify() {
        for e in catalog() {
            let name = e.ty.name().to_owned();
            if name.starts_with("compare_and_swap") || name == "sticky_bit" {
                assert!(verify_entry(&e), "verification failed for {name}");
            }
        }
    }

    // The heavyweight Theorem 5 verifications (test_and_set, queue,
    // fetch_and_add) run in the crate's integration suite and benches.
    #[test]
    fn tas_entry_verifies_via_theorem5() {
        let e = catalog()
            .into_iter()
            .find(|e| e.ty.name() == "test_and_set")
            .unwrap();
        assert!(verify_entry(&e));
    }

    #[test]
    fn shift2_entry_verifies_via_theorem5() {
        let e = catalog()
            .into_iter()
            .find(|e| e.ty.name() == "shift2")
            .unwrap();
        assert!(verify_entry(&e));
    }

    #[test]
    fn mpr2_entry_verifies_via_theorem5() {
        let e = catalog()
            .into_iter()
            .find(|e| e.ty.name() == "mpr2")
            .unwrap();
        assert!(verify_entry(&e));
    }
}
