//! Bounded impossibility sweeps for the new parameterized families,
//! pinning the **upper** side of their consensus numbers with machine
//! evidence instead of citation alone:
//!
//! * **1-bit shift register at 2 processes** — the one-round register
//!   family of [`crate::impossibility`], augmented with one access to a
//!   shared `shift1` object. Every candidate fails, exhibiting on a
//!   bounded family that `shift1` (which is trivial — every shift
//!   returns `"0"`) adds nothing to registers: `h(shift1) = 1`, the base
//!   case of Aspnes's `h(shift_w) = w`.
//! * **2-bit shift register at 3 processes** — the *winner-table*
//!   family: the exact mechanism that solves 2-process consensus
//!   (announce, shift once, map the returned contents to a winner, adopt
//!   the winner's announce) generalized to 3 processes. Every candidate
//!   fails: `h(shift2) < 3`, which together with the model-checked
//!   2-process protocol pins `h(shift2) = 2`.
//! * **1-window MPR register at 2 processes** — the write-then-read
//!   family on a single `mpr1` object: with window size 1 a read names
//!   the *last* writer, which (like a register, and unlike the `k = 2`
//!   window whose oldest entry names the *first* writer) cannot decide a
//!   race. Every candidate fails: `h_1(mpr1) = 1` on this family.
//!
//! Each sweep is exhaustive over its strategy space and model-checks
//! every candidate against every input vector and every schedule,
//! mirroring [`crate::impossibility::search_one_round_protocols`].

use std::sync::Arc;

use wfc_explorer::program::{BinOp, ProgramBuilder};
use wfc_explorer::{explore, ExploreOptions, ExplorerError, ObjectInstance, Progress, System};
use wfc_spec::{canonical, PortId};

/// The sweep-level control poll (cancellation + wall budget), once per
/// candidate; progress reported on the `steps` axis.
fn sweep_poll(opts: &ExploreOptions, explorations: usize) -> Result<(), ExplorerError> {
    let progress = Progress {
        steps: explorations as u64,
        ..Progress::default()
    };
    if opts.cancel.is_cancelled() {
        progress.record();
        return Err(ExplorerError::Cancelled { progress });
    }
    if let Some(e) = opts.budget.wall_exceeded(progress) {
        return Err(ExplorerError::Exhausted(e));
    }
    Ok(())
}

/// Outcome of a family sweep: candidates examined, survivors (the
/// impossibility predicts zero), explorations performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FamilyOutcome {
    /// Candidate protocols examined.
    pub candidates: usize,
    /// Candidates that satisfied consensus on every schedule of every
    /// input vector.
    pub survivor_count: usize,
    /// Exhaustive explorations performed (early termination per
    /// candidate on the first failing input vector).
    pub explorations: usize,
}

// ---------------------------------------------------------------------
// shift1 at 2 processes
// ---------------------------------------------------------------------

/// One process's strategy in the shift1-augmented one-round family:
/// shift the shared `shift1` object once (capturing its — constant —
/// response is pointless, so the strategy only picks the direction),
/// then run the one-round register protocol: write own input and read
/// the peer's register in either order, deciding by a table over
/// (own input, peer read).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Shift1Strategy {
    /// `true`: shift left; `false`: shift right.
    pub shl: bool,
    /// `true`: write before reading; `false`: read before writing.
    pub write_first: bool,
    /// `decide[own][read]` ∈ {0, 1}.
    pub decide: [[u8; 2]; 2],
}

impl Shift1Strategy {
    /// Enumerates all `2 · 2 · 16 = 64` strategies.
    pub fn all() -> Vec<Shift1Strategy> {
        let mut out = Vec::with_capacity(64);
        for shl in [false, true] {
            for write_first in [false, true] {
                for table in 0u8..16 {
                    let bit = |k: u8| (table >> k) & 1;
                    out.push(Shift1Strategy {
                        shl,
                        write_first,
                        decide: [[bit(0), bit(1)], [bit(2), bit(3)]],
                    });
                }
            }
        }
        out
    }
}

fn build_shift1_system(s0: Shift1Strategy, s1: Shift1Strategy, inputs: [bool; 2]) -> System {
    let reg = Arc::new(canonical::boolean_register(2));
    let shift = Arc::new(canonical::shift_register(1, 2));
    let v0 = reg.state_id("v0").unwrap();
    let init = shift.state_id("1").unwrap();
    let announce = |p: usize| {
        let mut ports = vec![None, None];
        ports[p] = Some(PortId::new(0));
        ports[1 - p] = Some(PortId::new(1));
        ObjectInstance::new(Arc::clone(&reg), v0, ports)
    };
    let read = reg.invocation_id("read").unwrap().index() as i64;
    let shl = shift.invocation_id("shl").unwrap().index() as i64;
    let shr = shift.invocation_id("shr").unwrap().index() as i64;
    let program = |me: usize, s: Shift1Strategy, input: bool| {
        let write = reg
            .invocation_id(if input { "write1" } else { "write0" })
            .unwrap()
            .index() as i64;
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        b.invoke(2_i64, if s.shl { shl } else { shr }, None);
        if s.write_first {
            b.invoke(me as i64, write, None);
            b.invoke(1 - me as i64, read, Some(r));
        } else {
            b.invoke(1 - me as i64, read, Some(r));
            b.invoke(me as i64, write, None);
        }
        let own = usize::from(input);
        let d0 = i64::from(s.decide[own][0]);
        let d1 = i64::from(s.decide[own][1]);
        let dec = b.var("dec");
        b.compute(dec, r, BinOp::Mul, d1 - d0);
        b.compute(dec, dec, BinOp::Add, d0);
        b.ret(dec);
        b.build().expect("well-formed shift1 program")
    };
    System::new(
        vec![
            announce(0),
            announce(1),
            ObjectInstance::identity_ports(shift, init, 2),
        ],
        vec![program(0, s0, inputs[0]), program(1, s1, inputs[1])],
    )
}

/// Exhaustively searches the shift1-augmented one-round family
/// (`64² = 4096` candidate pairs) for a 2-process consensus protocol.
/// Zero survivors: the trivial 1-bit shift register adds nothing to
/// registers.
///
/// # Errors
///
/// Propagates cancellation and budget exhaustion.
pub fn search_shift1_protocols(opts: &ExploreOptions) -> Result<FamilyOutcome, ExplorerError> {
    let _span = wfc_obs::span::enter_if(opts.obs.spans, "search_shift1_protocols", String::new());
    let strategies = Shift1Strategy::all();
    let mut survivor_count = 0usize;
    let mut explorations = 0usize;
    let mut candidates = 0usize;
    for &s0 in &strategies {
        for &s1 in &strategies {
            sweep_poll(opts, explorations)?;
            candidates += 1;
            let mut ok = true;
            for mask in 0..4u8 {
                let inputs = [mask & 1 != 0, mask & 2 != 0];
                let system = build_shift1_system(s0, s1, inputs);
                explorations += 1;
                let e = explore(&system, opts)?;
                let allowed: Vec<i64> = inputs.iter().map(|&b| i64::from(b)).collect();
                if !e.decisions_agree() || !e.decisions_within(&allowed) {
                    ok = false;
                    break;
                }
            }
            if ok {
                survivor_count += 1;
            }
        }
    }
    if opts.obs.metrics {
        let reg = wfc_obs::metrics::Registry::global();
        reg.counter("hierarchy.candidates").add(candidates as u64);
        reg.counter("hierarchy.explorations")
            .add(explorations as u64);
    }
    Ok(FamilyOutcome {
        candidates,
        survivor_count,
        explorations,
    })
}

// ---------------------------------------------------------------------
// shift2 at 3 processes
// ---------------------------------------------------------------------

/// Responses a single shift can return, per direction, starting from
/// `"01"` with every process shifting exactly once: `shl` outputs have
/// low bit 0 (`{"00", "10"}`), `shr` outputs have high bit 0
/// (`{"00", "01"}`); `"11"` is unreachable either way.
const SHL_RESPONSES: [&str; 2] = ["00", "10"];
const SHR_RESPONSES: [&str; 2] = ["00", "01"];

/// One process's strategy in the 3-process winner-table family: announce
/// your input to both peers, shift the shared `shift2` object once in
/// your chosen direction, map the returned contents to a *winner*
/// process, and decide the winner's announced value (your own input if
/// the winner is you).
///
/// Strategies whose winner tables differ only on unreachable responses
/// are behaviorally identical, so the table is indexed by the two
/// responses reachable for the chosen direction: `2 · 3² = 18`
/// strategies per process.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShiftWinnerStrategy {
    /// `true`: shift left; `false`: shift right.
    pub shl: bool,
    /// `winner[i]` ∈ {0, 1, 2}: the process whose announce to adopt on
    /// seeing the `i`-th reachable response ([`SHL_RESPONSES`] /
    /// [`SHR_RESPONSES`]).
    pub winner: [u8; 2],
}

impl ShiftWinnerStrategy {
    /// Enumerates all `2 · 9 = 18` strategies.
    pub fn all() -> Vec<ShiftWinnerStrategy> {
        let mut out = Vec::with_capacity(18);
        for shl in [false, true] {
            for w0 in 0..3u8 {
                for w1 in 0..3u8 {
                    out.push(ShiftWinnerStrategy {
                        shl,
                        winner: [w0, w1],
                    });
                }
            }
        }
        out
    }
}

fn build_shift2_three_system(strategies: [ShiftWinnerStrategy; 3], inputs: [bool; 3]) -> System {
    let reg = Arc::new(canonical::boolean_register(2));
    let shift = Arc::new(canonical::shift_register(2, 3));
    let v0 = reg.state_id("v0").unwrap();
    let init = shift.state_id("01").unwrap();
    let read = reg.invocation_id("read").unwrap().index() as i64;
    let shl = shift.invocation_id("shl").unwrap().index() as i64;
    let shr = shift.invocation_id("shr").unwrap().index() as i64;
    // announce[(p, q)] written by p (port 0), read by q (port 1): the six
    // SRSW registers come first, the shared shift register is object 6.
    let pairs: Vec<(usize, usize)> = (0..3)
        .flat_map(|p| (0..3).filter(move |&q| q != p).map(move |q| (p, q)))
        .collect();
    let announce_idx = |p: usize, q: usize| pairs.iter().position(|&x| x == (p, q)).unwrap() as i64;
    let mut objects: Vec<ObjectInstance> = pairs
        .iter()
        .map(|&(p, q)| {
            let mut ports = vec![None, None, None];
            ports[p] = Some(PortId::new(0));
            ports[q] = Some(PortId::new(1));
            ObjectInstance::new(Arc::clone(&reg), v0, ports)
        })
        .collect();
    let shift_obj = objects.len() as i64;
    let resp_id = {
        let ty = Arc::clone(&shift);
        move |name: &str| ty.response_id(name).unwrap().index() as i64
    };
    objects.push(ObjectInstance::identity_ports(shift, init, 3));
    let program = |me: usize, s: ShiftWinnerStrategy, input: bool| {
        let write = reg
            .invocation_id(if input { "write1" } else { "write0" })
            .unwrap()
            .index() as i64;
        let responses = if s.shl { SHL_RESPONSES } else { SHR_RESPONSES };
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        let t = b.var("t");
        for q in 0..3 {
            if q != me {
                b.invoke(announce_idx(me, q), write, None);
            }
        }
        b.invoke(shift_obj, if s.shl { shl } else { shr }, Some(r));
        for (i, name) in responses.iter().enumerate() {
            let resp = resp_id(name);
            let skip = b.fresh_label();
            b.compute(t, r, BinOp::Eq, resp);
            b.jump_if_zero(t, skip);
            let w = s.winner[i] as usize;
            if w == me {
                b.ret(i64::from(input));
            } else {
                let rv = b.var("rv");
                b.invoke(announce_idx(w, me), read, Some(rv));
                b.ret(rv);
            }
            b.bind(skip);
        }
        // Unreachable ("11"): decide own input so the program is total.
        b.ret(i64::from(input));
        b.build().expect("well-formed winner-table program")
    };
    System::new(
        objects,
        vec![
            program(0, strategies[0], inputs[0]),
            program(1, strategies[1], inputs[1]),
            program(2, strategies[2], inputs[2]),
        ],
    )
}

fn shift2_triple_is_consensus(
    strategies: [ShiftWinnerStrategy; 3],
    opts: &ExploreOptions,
    explorations: &mut usize,
) -> Result<bool, ExplorerError> {
    for mask in 0..8u8 {
        let inputs = [mask & 1 != 0, mask & 2 != 0, mask & 4 != 0];
        let system = build_shift2_three_system(strategies, inputs);
        *explorations += 1;
        let e = explore(&system, opts)?;
        let allowed: Vec<i64> = inputs.iter().map(|&b| i64::from(b)).collect();
        if !e.decisions_agree() || !e.decisions_within(&allowed) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Sweeps the third process's strategy against every pair of *natural*
/// strategies for the first two — the lifted 2-process mechanism (P0
/// shifts left, P1 shifts right, each reading the race off the returned
/// contents), with all guesses for the third party: `9 · 18 = 162`
/// candidates. Zero survive. The fast half of the shift2 impossibility;
/// [`search_shift2_three_process_full`] sweeps all `18³`.
///
/// # Errors
///
/// Propagates cancellation and budget exhaustion.
pub fn search_shift2_three_process_reduced(
    opts: &ExploreOptions,
) -> Result<FamilyOutcome, ExplorerError> {
    let _span = wfc_obs::span::enter_if(
        opts.obs.spans,
        "search_shift2_three_process_reduced",
        String::new(),
    );
    let mut survivor_count = 0usize;
    let mut explorations = 0usize;
    let mut candidates = 0usize;
    let third = ShiftWinnerStrategy::all();
    for w0 in 0..3u8 {
        // P0: left-shifter; "10" ⇒ P0 itself, "00" ⇒ guess w0.
        let s0 = ShiftWinnerStrategy {
            shl: true,
            winner: [w0, 0],
        };
        for w1 in 0..3u8 {
            // P1: right-shifter; "00" ⇒ P1 itself, "01" ⇒ guess w1.
            let s1 = ShiftWinnerStrategy {
                shl: false,
                winner: [1, w1],
            };
            for &s2 in &third {
                sweep_poll(opts, explorations)?;
                candidates += 1;
                if shift2_triple_is_consensus([s0, s1, s2], opts, &mut explorations)? {
                    survivor_count += 1;
                }
            }
        }
    }
    if opts.obs.metrics {
        let reg = wfc_obs::metrics::Registry::global();
        reg.counter("hierarchy.candidates").add(candidates as u64);
        reg.counter("hierarchy.explorations")
            .add(explorations as u64);
    }
    Ok(FamilyOutcome {
        candidates,
        survivor_count,
        explorations,
    })
}

/// The full 3-process winner-table sweep: `18³ = 5832` candidate
/// triples, every input vector, every schedule. Zero survivors:
/// `h(shift2) < 3`, so with the model-checked 2-process protocol,
/// `h(shift2) = 2` exactly. Expensive (minutes in debug); exercised by
/// the `--ignored` test `no_winner_table_protocol_solves_3_consensus`.
///
/// # Errors
///
/// Propagates cancellation and budget exhaustion.
pub fn search_shift2_three_process_full(
    opts: &ExploreOptions,
) -> Result<FamilyOutcome, ExplorerError> {
    let _span = wfc_obs::span::enter_if(
        opts.obs.spans,
        "search_shift2_three_process_full",
        String::new(),
    );
    let strategies = ShiftWinnerStrategy::all();
    let mut survivor_count = 0usize;
    let mut explorations = 0usize;
    let mut candidates = 0usize;
    for &s0 in &strategies {
        for &s1 in &strategies {
            for &s2 in &strategies {
                sweep_poll(opts, explorations)?;
                candidates += 1;
                if shift2_triple_is_consensus([s0, s1, s2], opts, &mut explorations)? {
                    survivor_count += 1;
                }
            }
        }
    }
    if opts.obs.metrics {
        let reg = wfc_obs::metrics::Registry::global();
        reg.counter("hierarchy.candidates").add(candidates as u64);
        reg.counter("hierarchy.explorations")
            .add(explorations as u64);
    }
    Ok(FamilyOutcome {
        candidates,
        survivor_count,
        explorations,
    })
}

// ---------------------------------------------------------------------
// mpr1 at 2 processes
// ---------------------------------------------------------------------

/// One process's strategy in the single-object `mpr1` family: append
/// your identity as a marker to the shared 1-window register, read the
/// window back (it holds the *last* marker written, so after your own
/// write the window is never empty), and decide by a table over
/// (own input, read marker).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Mpr1Strategy {
    /// `decide[own][marker]` ∈ {0, 1}.
    pub decide: [[u8; 2]; 2],
}

impl Mpr1Strategy {
    /// Enumerates all 16 strategies.
    pub fn all() -> Vec<Mpr1Strategy> {
        (0u8..16)
            .map(|table| {
                let bit = |k: u8| (table >> k) & 1;
                Mpr1Strategy {
                    decide: [[bit(0), bit(1)], [bit(2), bit(3)]],
                }
            })
            .collect()
    }
}

fn build_mpr1_system(s0: Mpr1Strategy, s1: Mpr1Strategy, inputs: [bool; 2]) -> System {
    let mpr = Arc::new(canonical::mpr(1, 2));
    let empty = mpr.state_id("⟨⟩").unwrap();
    let read = mpr.invocation_id("read").unwrap().index() as i64;
    let marker_inv = [
        mpr.invocation_id("write0").unwrap().index() as i64,
        mpr.invocation_id("write1").unwrap().index() as i64,
    ];
    // After the process's own write the window holds exactly one marker:
    // responses "⟨0⟩"/"⟨1⟩", mapped to 0/1 for the decision table.
    let marker_one = mpr.response_id("⟨1⟩").unwrap().index() as i64;
    let program = |me: usize, s: Mpr1Strategy, input: bool| {
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        let m = b.var("m");
        b.invoke(0_i64, marker_inv[me], None);
        b.invoke(0_i64, read, Some(r));
        // m = [r == "⟨1⟩"] ∈ {0, 1}; "⟨⟩" is unreachable after the write.
        b.compute(m, r, BinOp::Eq, marker_one);
        let own = usize::from(input);
        let d0 = i64::from(s.decide[own][0]);
        let d1 = i64::from(s.decide[own][1]);
        let dec = b.var("dec");
        b.compute(dec, m, BinOp::Mul, d1 - d0);
        b.compute(dec, dec, BinOp::Add, d0);
        b.ret(dec);
        b.build().expect("well-formed mpr1 program")
    };
    System::new(
        vec![ObjectInstance::identity_ports(mpr, empty, 2)],
        vec![program(0, s0, inputs[0]), program(1, s1, inputs[1])],
    )
}

/// Exhaustively searches the single-object `mpr1` family (`16² = 256`
/// candidate pairs) for a 2-process consensus protocol. Zero survivors:
/// a 1-window read names the *last* writer, which decides nothing —
/// `h_1(mpr1) = 1` on this family, against `h_1^r(mpr2) = 2` one window
/// slot up.
///
/// # Errors
///
/// Propagates cancellation and budget exhaustion.
pub fn search_mpr1_protocols(opts: &ExploreOptions) -> Result<FamilyOutcome, ExplorerError> {
    let _span = wfc_obs::span::enter_if(opts.obs.spans, "search_mpr1_protocols", String::new());
    let strategies = Mpr1Strategy::all();
    let mut survivor_count = 0usize;
    let mut explorations = 0usize;
    let mut candidates = 0usize;
    for &s0 in &strategies {
        for &s1 in &strategies {
            sweep_poll(opts, explorations)?;
            candidates += 1;
            let mut ok = true;
            for mask in 0..4u8 {
                let inputs = [mask & 1 != 0, mask & 2 != 0];
                let system = build_mpr1_system(s0, s1, inputs);
                explorations += 1;
                let e = explore(&system, opts)?;
                let allowed: Vec<i64> = inputs.iter().map(|&b| i64::from(b)).collect();
                if !e.decisions_agree() || !e.decisions_within(&allowed) {
                    ok = false;
                    break;
                }
            }
            if ok {
                survivor_count += 1;
            }
        }
    }
    if opts.obs.metrics {
        let reg = wfc_obs::metrics::Registry::global();
        reg.counter("hierarchy.candidates").add(candidates as u64);
        reg.counter("hierarchy.explorations")
            .add(explorations as u64);
    }
    Ok(FamilyOutcome {
        candidates,
        survivor_count,
        explorations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_enumerations_are_complete_and_distinct() {
        let s1 = Shift1Strategy::all();
        assert_eq!(s1.len(), 64);
        let sw = ShiftWinnerStrategy::all();
        assert_eq!(sw.len(), 18);
        for (i, a) in sw.iter().enumerate() {
            for b in &sw[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(Mpr1Strategy::all().len(), 16);
    }

    /// `h(shift1) = 1`, machine-checked on the augmented one-round
    /// family: all 4096 candidates refuted.
    #[test]
    fn no_shift1_protocol_solves_consensus() {
        let outcome = search_shift1_protocols(&ExploreOptions::default()).unwrap();
        assert_eq!(outcome.candidates, 64 * 64);
        assert_eq!(outcome.survivor_count, 0, "{outcome:?}");
    }

    /// `h_1(mpr1) = 1`, machine-checked: all 256 candidates refuted.
    #[test]
    fn no_mpr1_protocol_solves_consensus() {
        let outcome = search_mpr1_protocols(&ExploreOptions::default()).unwrap();
        assert_eq!(outcome.candidates, 16 * 16);
        assert_eq!(outcome.survivor_count, 0, "{outcome:?}");
    }

    /// The 2-process winner-table mechanism (which *does* solve 2-process
    /// consensus — see `shift2_consensus_system`) dies at 3 processes for
    /// every choice of the third strategy: 162 candidates, zero survive.
    #[test]
    fn natural_shift2_strategies_fail_at_three_processes() {
        let outcome = search_shift2_three_process_reduced(&ExploreOptions::default()).unwrap();
        assert_eq!(outcome.candidates, 9 * 18);
        assert_eq!(outcome.survivor_count, 0, "{outcome:?}");
    }

    /// The full winner-table sweep: `18³ = 5832` triples, zero
    /// survivors — `h(shift2) < 3`. Run with
    /// `cargo test --release -p wfc-hierarchy -- --ignored`.
    #[test]
    #[ignore = "minutes-long exhaustive sweep; run with --ignored in release"]
    fn no_winner_table_protocol_solves_3_consensus() {
        let outcome = search_shift2_three_process_full(&ExploreOptions::default()).unwrap();
        assert_eq!(outcome.candidates, 18 * 18 * 18);
        assert_eq!(outcome.survivor_count, 0, "{outcome:?}");
    }

    /// Guard against vacuous refutation: the decide-self triple (every
    /// winner table names its own process) passes both all-equal input
    /// vectors and only dies on mixed ones — so the sweep's refutations
    /// are doing real schedule-level work, not rejecting everything
    /// outright.
    #[test]
    fn decide_self_triple_fails_only_on_mixed_inputs() {
        let triple = [
            ShiftWinnerStrategy {
                shl: true,
                winner: [0, 0],
            },
            ShiftWinnerStrategy {
                shl: false,
                winner: [1, 1],
            },
            ShiftWinnerStrategy {
                shl: true,
                winner: [2, 2],
            },
        ];
        let opts = ExploreOptions::default();
        for inputs in [[false; 3], [true; 3]] {
            let system = build_shift2_three_system(triple, inputs);
            let e = explore(&system, &opts).unwrap();
            assert!(e.decisions_agree(), "equal inputs must agree");
        }
        let mut explorations = 0;
        assert!(
            !shift2_triple_is_consensus(triple, &opts, &mut explorations).unwrap(),
            "a mixed vector must refute the decide-self triple"
        );
    }
}
