//! Hierarchy levels and certified values.
//!
//! A type's position in a wait-free hierarchy (paper, Section 2.3) is a
//! *consensus number*: the largest `n` for which the type (under the
//! hierarchy's resource rules) implements `n`-process consensus, or ∞.
//! We record positions as intervals with *evidence*: lower bounds come
//! from protocols this repository model-checks; upper bounds are either
//! machine-checked (small cases) or cite the classical theorems.

use std::fmt;

/// A hierarchy level: a consensus number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Level {
    /// Consensus for exactly `n` processes (and no more).
    Finite(u32),
    /// Consensus for any number of processes.
    Infinite,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::Finite(n) => write!(f, "{n}"),
            Level::Infinite => write!(f, "∞"),
        }
    }
}

/// Why a bound is believed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Evidence {
    /// Re-verified by this repository's model checker (the named check
    /// runs in the crate's test suite and benches).
    Checked {
        /// What is executed to establish the bound.
        check: &'static str,
    },
    /// A classical theorem, cited; not re-proved here.
    Cited {
        /// The source, in the paper's bibliography numbering where
        /// applicable.
        source: &'static str,
    },
    /// Immediate from definitions (e.g. every type has level ≥ 1:
    /// a process may always decide its own input solo).
    ByDefinition,
}

/// A certified hierarchy value: `lower ≤ value ≤ upper` with evidence
/// for both ends.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HierarchyValue {
    /// Certified lower bound.
    pub lower: Level,
    /// Evidence for the lower bound.
    pub lower_evidence: Evidence,
    /// Certified upper bound.
    pub upper: Level,
    /// Evidence for the upper bound.
    pub upper_evidence: Evidence,
}

impl HierarchyValue {
    /// A pinned value with the same bound on both ends.
    pub fn exactly(level: Level, lower_evidence: Evidence, upper_evidence: Evidence) -> Self {
        HierarchyValue {
            lower: level,
            lower_evidence,
            upper: level,
            upper_evidence,
        }
    }

    /// The exact level, when the interval is pinned.
    pub fn exact(&self) -> Option<Level> {
        (self.lower == self.upper).then_some(self.lower)
    }

    /// `true` if the interval is consistent (`lower ≤ upper`).
    pub fn is_consistent(&self) -> bool {
        self.lower <= self.upper
    }
}

impl fmt::Display for HierarchyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.exact() {
            Some(l) => write!(f, "{l}"),
            None => write!(f, "[{}, {}]", self.lower, self.upper),
        }
    }
}

/// The four wait-free hierarchies of Jayanti \[9\] (paper, Section 2.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Hierarchy {
    /// `h_1`: one object, no registers.
    H1,
    /// `h_1^r`: one object plus registers (Herlihy's consensus number).
    H1R,
    /// `h_m`: many objects, no registers.
    HM,
    /// `h_m^r`: many objects plus registers.
    HMR,
}

impl Hierarchy {
    /// All four hierarchies.
    pub const ALL: [Hierarchy; 4] = [Hierarchy::H1, Hierarchy::H1R, Hierarchy::HM, Hierarchy::HMR];
}

impl fmt::Display for Hierarchy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Hierarchy::H1 => "h_1",
            Hierarchy::H1R => "h_1^r",
            Hierarchy::HM => "h_m",
            Hierarchy::HMR => "h_m^r",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_with_infinity_on_top() {
        assert!(Level::Finite(2) < Level::Finite(3));
        assert!(Level::Finite(1_000_000) < Level::Infinite);
        assert_eq!(Level::Infinite, Level::Infinite);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Level::Finite(2).to_string(), "2");
        assert_eq!(Level::Infinite.to_string(), "∞");
        assert_eq!(Hierarchy::HMR.to_string(), "h_m^r");
        let v = HierarchyValue {
            lower: Level::Finite(2),
            lower_evidence: Evidence::ByDefinition,
            upper: Level::Infinite,
            upper_evidence: Evidence::ByDefinition,
        };
        assert_eq!(v.to_string(), "[2, ∞]");
    }

    #[test]
    fn exactness() {
        let v = HierarchyValue::exactly(
            Level::Finite(2),
            Evidence::Checked { check: "x" },
            Evidence::Cited { source: "y" },
        );
        assert_eq!(v.exact(), Some(Level::Finite(2)));
        assert!(v.is_consistent());
        assert_eq!(v.to_string(), "2");
    }
}
