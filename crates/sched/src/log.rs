//! Operation-history recording under the scheduler.
//!
//! [`OpLog`] mirrors `wfc_runtime::EventLog` — stamp, run the operation,
//! stamp, record — but its clock is the execution's logical step
//! counter, and **taking a stamp is itself a scheduler event**: a write
//! access to a dedicated clock cell, dependent with every other stamp.
//!
//! That last property is what makes sleep-set pruning sound for history
//! checking. Swapping two adjacent *data*-independent accesses can still
//! reorder operation invocation/response events and change which
//! operations overlap — i.e. change the linearizability verdict — so
//! schedules that differ in stamp order must never be identified.
//! Because every stamp conflicts with every other stamp, the pruner
//! only ever merges schedules with byte-identical histories.

use std::sync::Mutex;

use wfc_explorer::linearizability::{ConcurrentHistory, OpRecord};
use wfc_spec::{FiniteType, InvId, PortId, RespId};

use crate::exec::AccessKind;
use crate::shim::SharedCell;

/// A log of completed operations stamped by the scheduler's logical
/// clock. Create one per execution, inside the scenario builder.
#[derive(Debug)]
pub struct OpLog {
    clock: SharedCell<u64>,
    ops: Mutex<Vec<OpRecord>>,
}

#[allow(clippy::new_without_default)] // construction requires an ambient execution
impl OpLog {
    /// Creates an empty log (inside an execution only).
    pub fn new() -> OpLog {
        OpLog {
            clock: SharedCell::new(0),
            ops: Mutex::new(Vec::new()),
        }
    }

    /// Draws a strictly-increasing timestamp. This is a scheduler event
    /// (a write of the clock cell): call once when an operation is
    /// invoked and once when it responds.
    pub fn stamp(&self) -> i64 {
        self.clock.perform(AccessKind::Write, |clock, step| {
            *clock = step;
            (step as i64, true)
        })
    }

    /// Records a completed operation.
    pub fn record(
        &self,
        port: PortId,
        inv: InvId,
        resp: RespId,
        invoked_at: i64,
        responded_at: i64,
    ) {
        assert!(invoked_at <= responded_at, "response precedes invocation");
        self.ops
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(OpRecord {
                port,
                inv,
                resp,
                invoked_at,
                responded_at,
            });
    }

    /// The recorded operations, sorted by `(invoked_at, responded_at,
    /// port)` — a deterministic order since stamps are unique.
    pub fn snapshot(&self) -> Vec<OpRecord> {
        let mut ops = self.ops.lock().unwrap_or_else(|e| e.into_inner()).clone();
        ops.sort_by_key(|o| (o.invoked_at, o.responded_at, o.port.index()));
        ops
    }

    /// The recorded operations as a [`ConcurrentHistory`].
    ///
    /// # Panics
    ///
    /// Panics if more than 64 operations were recorded (checker limit).
    pub fn history(&self) -> ConcurrentHistory {
        ConcurrentHistory::new(self.snapshot())
    }
}

/// Renders a history deterministically with the type's names, e.g.
/// `P1 read -> 1 @[4,9]` — the text embedded in counterexample messages.
pub fn render_history(ty: &FiniteType, ops: &[OpRecord]) -> String {
    let mut out = String::new();
    for op in ops {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!(
            "  P{} {} -> {} @[{},{}]",
            op.port.index(),
            ty.invocation_name(op.inv),
            ty.response_name(op.resp),
            op.invoked_at,
            op.responded_at
        ));
    }
    out
}
