//! The three exploration modes and the replay engine.
//!
//! All modes run *stateless*: every schedule is executed from scratch
//! through [`crate::exec::run_one`], so any schedule the explorer takes
//! can be re-taken verbatim by [`replay`] from its serialized string.
//!
//! - **Exhaustive DFS** walks the full schedule tree, optionally pruning
//!   with *sleep sets* (Godefroid): after a move is explored at a node,
//!   it is put to sleep for the node's later siblings and stays asleep
//!   down their subtrees until a dependent access executes. Dependence
//!   is the commuting rule of [`Access::independent`]; because every
//!   `OpLog` stamp is a write of one shared clock cell, schedules with
//!   different operation histories are never identified (see
//!   [`crate::log`]).
//! - **Preemption bounding** explores every schedule with at most `k`
//!   preemptions (a switch away from a thread that could have
//!   continued), for `k` rising until nothing was bounded out — each
//!   round a plain DFS whose sibling generation skips over-budget
//!   alternatives. Sleep sets are off in this mode (combining the two
//!   prunings soundly is subtle, and the bound is the point here).
//! - **PCT** random walks: each run draws random thread priorities and
//!   `depth − 1` priority-change points from the in-repo SplitMix64,
//!   then always schedules the highest-priority runnable thread. The
//!   schedule actually taken is recorded, so replay is independent of
//!   the PRNG.

use std::fmt;

use wfc_spec::control::{Budget, CancelToken, Progress};
use wfc_spec::prng::SplitMix64;

use crate::exec::{self, Access, Decider, Execution, Pool};
use crate::schedule::Schedule;

/// Which exploration strategy to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Exhaustive DFS over the schedule tree.
    Exhaustive {
        /// Enable sleep-set pruning of commuting access pairs.
        sleep_sets: bool,
    },
    /// Iterative preemption bounding: all schedules with `≤ k`
    /// preemptions, `k = 0, 1, …, max_preemptions`, stopping early once
    /// a round bounded nothing out (full coverage reached).
    Preemption {
        /// The largest preemption bound to try.
        max_preemptions: u32,
    },
    /// Seeded PCT-style random walks.
    Pct {
        /// PRNG seed (SplitMix64).
        seed: u64,
        /// Number of random schedules to run.
        runs: u64,
        /// PCT depth `d`: `d − 1` priority-change points per run.
        depth: u32,
    },
}

/// Budgets and strategy for one exploration.
#[derive(Clone, Copy, Debug)]
pub struct SchedOptions {
    /// The exploration strategy.
    pub mode: Mode,
    /// The control-plane budget: the checker meters `schedules` (a hard
    /// cap across the whole exploration — all preemption rounds / all
    /// PCT runs; exceeding it is [`SchedError::Exhausted`]) and `steps`
    /// (a per-execution cap, defense against unbounded fixtures —
    /// exceeding it is [`SchedError::StepLimit`]), plus the optional
    /// wall-clock deadline.
    pub budget: Budget,
    /// Cooperative cancellation, polled at schedule boundaries
    /// (defaults to [`CancelToken::NONE`]).
    pub cancel: CancelToken,
}

impl Default for SchedOptions {
    fn default() -> Self {
        SchedOptions {
            mode: Mode::Exhaustive { sleep_sets: true },
            budget: Budget::default(),
            cancel: CancelToken::NONE,
        }
    }
}

impl SchedOptions {
    /// This configuration with a different mode.
    pub fn with_mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// This configuration with a whole replacement [`Budget`].
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// This configuration with a schedule budget.
    pub fn with_max_schedules(mut self, max_schedules: u64) -> Self {
        self.budget.schedules = max_schedules;
        self
    }

    /// This configuration with a per-execution step cap.
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.budget.steps = max_steps;
        self
    }

    /// This configuration with a cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }
}

/// A model-checking failure (not a fixture verdict — counterexamples are
/// reported inside [`Exploration`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SchedError {
    /// A control-plane budget axis (schedules, or the wall-clock
    /// deadline) was exhausted before the exploration completed. The
    /// same [`Exhausted`](wfc_spec::control::Exhausted) the explorer
    /// raises, carrying the exact usage and a [`Progress`] snapshot.
    Exhausted(wfc_spec::control::Exhausted),
    /// One execution exceeded the per-execution `budget.steps` cap.
    StepLimit {
        /// The configured `budget.steps`.
        limit: u64,
        /// The schedule prefix that was abandoned.
        schedule: Schedule,
    },
    /// The exploration's [`CancelToken`] was set (server-side deadline
    /// or shutdown). Polled at schedule boundaries, so cancellation
    /// latency is at most one schedule execution and the snapshot
    /// counts only fully executed schedules.
    Cancelled {
        /// Work completed when the token was observed.
        progress: Progress,
    },
    /// A replayed schedule did not match the scenario.
    Replay(String),
    /// A spec or schedule string did not parse, or named an unknown
    /// target.
    Parse(String),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Exhausted(e) => write!(f, "{e}"),
            SchedError::Cancelled { .. } => {
                write!(f, "exploration cancelled before completion")
            }
            SchedError::StepLimit { limit, schedule } => write!(
                f,
                "execution exceeded {limit} steps (schedule prefix {schedule})"
            ),
            SchedError::Replay(m) => write!(f, "replay mismatch: {m}"),
            SchedError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for SchedError {}

/// A schedule that produced a violation, with the rendered evidence.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Counterexample {
    /// The replayable schedule.
    pub schedule: Schedule,
    /// Violation message, including the rendered history.
    pub message: String,
}

/// The result of an exploration.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Exploration {
    /// Schedules executed (including sleep-redundant continuations).
    pub schedules: u64,
    /// Scheduler steps executed, summed over all schedules — the
    /// `steps` axis of the [`Progress`] this exploration would report
    /// if preempted.
    pub steps: u64,
    /// Sibling branches skipped by sleep-set pruning.
    pub pruned: u64,
    /// Longest schedule seen, in steps.
    pub max_depth: u64,
    /// Largest preemption count seen along any schedule.
    pub max_preemptions: u32,
    /// Rounds run (preemption bounds tried, or PCT runs).
    pub rounds: u32,
    /// `true` if the state space was covered exhaustively (always false
    /// for PCT; false for preemption mode if the final bound still
    /// suppressed alternatives).
    pub complete: bool,
    /// The first violating schedule found, if any.
    pub counterexample: Option<Counterexample>,
}

/// Explores the scenario built by `build` under `options`.
///
/// `build` is invoked once per schedule and must construct a fresh,
/// deterministic [`Execution`] each time (same cells in the same order,
/// same thread bodies) — the replay guarantees depend on it.
pub fn explore<F: FnMut() -> Execution>(
    options: &SchedOptions,
    mut build: F,
) -> Result<Exploration, SchedError> {
    let mut pool = Pool::new();
    let mut stats = Exploration::default();
    match options.mode {
        Mode::Exhaustive { sleep_sets } => {
            stats.rounds = 1;
            let bounded = dfs(options, &mut pool, &mut build, None, sleep_sets, &mut stats)?;
            debug_assert!(!bounded);
            if stats.counterexample.is_none() {
                stats.complete = true;
            }
        }
        Mode::Preemption { max_preemptions } => {
            for k in 0..=max_preemptions {
                stats.rounds += 1;
                let bounded = dfs(options, &mut pool, &mut build, Some(k), false, &mut stats)?;
                if stats.counterexample.is_some() {
                    break;
                }
                if !bounded {
                    stats.complete = true;
                    break;
                }
            }
        }
        Mode::Pct { seed, runs, depth } => {
            let mut rng = SplitMix64::new(seed);
            // Horizon estimate for change-point placement; refined from
            // the previous run's actual length.
            let mut horizon: u64 = 32;
            for _ in 0..runs {
                poll(options, &stats)?;
                stats.rounds += 1;
                let mut decider = PctDecider::new(&mut rng, depth, horizon);
                let res = exec::run_one(&mut pool, &mut build, &mut decider, options.budget.steps);
                if res.aborted {
                    return Err(SchedError::StepLimit {
                        limit: options.budget.steps,
                        schedule: res.schedule,
                    });
                }
                horizon = res.steps.max(1);
                tally(&mut stats, res.steps, res.preemptions);
                if let Some(message) = res.violation {
                    stats.counterexample = Some(Counterexample {
                        schedule: res.schedule,
                        message,
                    });
                    break;
                }
            }
        }
    }
    wfc_obs::gauge_max!("sched.max_depth", stats.max_depth);
    Ok(stats)
}

/// The per-schedule-boundary control poll. The schedules axis is
/// checked unconditionally (so `max_schedules = 0` still refuses to
/// run, and a budget equal to the tree size still completes), while
/// cancellation and the wall deadline wait until at least one schedule
/// has run — a preempted exploration therefore always reports nonzero,
/// resumable [`Progress`], and cancellation latency is bounded by one
/// schedule execution.
fn poll(options: &SchedOptions, stats: &Exploration) -> Result<(), SchedError> {
    let progress = Progress {
        schedules: stats.schedules,
        steps: stats.steps,
        ..Progress::default()
    };
    if let Some(e) = options.budget.schedules_exceeded(stats.schedules, progress) {
        return Err(SchedError::Exhausted(e));
    }
    if stats.schedules > 0 {
        if options.cancel.is_cancelled() {
            progress.record();
            return Err(SchedError::Cancelled { progress });
        }
        if let Some(e) = options.budget.wall_exceeded(progress) {
            return Err(SchedError::Exhausted(e));
        }
    }
    Ok(())
}

/// The outcome of re-running one recorded schedule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Replayed {
    /// The schedule actually taken (equals the input on success).
    pub schedule: Schedule,
    /// Steps executed.
    pub steps: u64,
    /// Preemptions along the schedule.
    pub preemptions: u32,
    /// The violation the schedule produces, if any.
    pub violation: Option<String>,
}

/// Re-executes one serialized schedule against the scenario.
///
/// The schedule must cover the entire execution: every step must name an
/// enabled thread, and the execution must finish exactly when the
/// schedule does. Deterministic: replaying the same schedule twice
/// yields byte-identical violations.
pub fn replay<F: FnMut() -> Execution>(
    schedule: &Schedule,
    mut build: F,
) -> Result<Replayed, SchedError> {
    let mut pool = Pool::new();
    let mut decider = ReplayDecider {
        schedule: schedule.choices(),
    };
    let res = exec::run_one(
        &mut pool,
        &mut build,
        &mut decider,
        schedule.len() as u64 + 1,
    );
    if let Some(msg) = res.decider_error {
        return Err(SchedError::Replay(msg));
    }
    if res.aborted || res.steps != schedule.len() as u64 {
        return Err(SchedError::Replay(format!(
            "schedule has {} steps but the execution used {}",
            schedule.len(),
            res.steps
        )));
    }
    Ok(Replayed {
        schedule: res.schedule,
        steps: res.steps,
        preemptions: res.preemptions,
        violation: res.violation,
    })
}

fn tally(stats: &mut Exploration, steps: u64, preemptions: u32) {
    stats.schedules += 1;
    stats.steps += steps;
    stats.max_depth = stats.max_depth.max(steps);
    stats.max_preemptions = stats.max_preemptions.max(preemptions);
    wfc_obs::counter!("sched.schedules");
    wfc_obs::histogram!("sched.preemptions", preemptions);
}

/// A deferred DFS branch: the schedule prefix to replay and the sleep
/// set in force at the end of that prefix.
type Branch = (Vec<u8>, Vec<(usize, Access)>);

/// One DFS pass. Returns `true` if the preemption bound suppressed at
/// least one alternative (the pass under-approximates the tree).
fn dfs<F: FnMut() -> Execution>(
    options: &SchedOptions,
    pool: &mut Pool,
    build: &mut F,
    preemption_bound: Option<u32>,
    sleep_sets: bool,
    stats: &mut Exploration,
) -> Result<bool, SchedError> {
    let mut bounded = false;
    let mut stack: Vec<Branch> = vec![(Vec::new(), Vec::new())];
    while let Some((prefix, sleep)) = stack.pop() {
        poll(options, stats)?;
        let mut decider = DfsDecider {
            prefix: &prefix,
            sleep,
            use_sleep: sleep_sets,
            preemption_bound,
            preemptions: 0,
            bounded: false,
            dead: false,
            pruned: 0,
            taken: Vec::new(),
            siblings: Vec::new(),
        };
        let res = exec::run_one(pool, build, &mut decider, options.budget.steps);
        if let Some(msg) = res.decider_error {
            // A prefix generated by a previous run must replay cleanly;
            // failure means the scenario is not deterministic.
            return Err(SchedError::Replay(format!(
                "DFS prefix diverged — scenario builder is nondeterministic: {msg}"
            )));
        }
        if res.aborted {
            return Err(SchedError::StepLimit {
                limit: options.budget.steps,
                schedule: res.schedule,
            });
        }
        tally(stats, res.steps, res.preemptions);
        stats.pruned += decider.pruned;
        wfc_obs::counter!("sched.pruned", decider.pruned);
        bounded |= decider.bounded;
        if let Some(message) = res.violation {
            stats.counterexample = Some(Counterexample {
                schedule: res.schedule,
                message,
            });
            return Ok(bounded);
        }
        // Later siblings must be explored after earlier ones (their
        // sleep sets assume it), so push in reverse generation order.
        for entry in decider.siblings.into_iter().rev() {
            stack.push(entry);
        }
    }
    Ok(bounded)
}

/// DFS decider: follows a prefix, then takes default choices while
/// generating sibling prefixes with their sleep sets.
struct DfsDecider<'a> {
    prefix: &'a [u8],
    /// Current sleep set: threads (with the access they announced when
    /// put to sleep) whose scheduling would re-explore a covered
    /// subtree.
    sleep: Vec<(usize, Access)>,
    use_sleep: bool,
    preemption_bound: Option<u32>,
    preemptions: u32,
    bounded: bool,
    /// All candidates slept: this continuation re-runs covered ground
    /// and must not branch further.
    dead: bool,
    pruned: u64,
    taken: Vec<u8>,
    siblings: Vec<Branch>,
}

impl DfsDecider<'_> {
    fn switch_cost(prev: Option<usize>, to: usize, choosable: &[usize]) -> u32 {
        u32::from(prev.is_some_and(|p| p != to && choosable.contains(&p)))
    }
}

impl Decider for DfsDecider<'_> {
    fn choose(
        &mut self,
        step: usize,
        choosable: &[usize],
        enabled: &[usize],
        pending: &[Option<Access>],
        prev: Option<usize>,
    ) -> Result<usize, String> {
        if step < self.prefix.len() {
            let want = self.prefix[step] as usize;
            if !enabled.contains(&want) {
                return Err(format!("step {step}: thread {want} is not enabled"));
            }
            self.preemptions += Self::switch_cost(prev, want, choosable);
            self.taken.push(want as u8);
            return Ok(want);
        }
        let asleep = |t: usize| {
            self.sleep
                .iter()
                .any(|&(s, a)| s == t && Some(a) == pending[t])
        };
        let candidates: Vec<usize> = if self.use_sleep && !self.dead {
            choosable.iter().copied().filter(|&t| !asleep(t)).collect()
        } else {
            choosable.to_vec()
        };
        self.pruned += (choosable.len() - candidates.len()) as u64;
        let (chosen, branch) = if candidates.is_empty() {
            self.dead = true;
            (choosable[0], false)
        } else {
            // Preemption mode prefers continuing the previous thread so
            // the default path stays within every bound.
            let keep_prev =
                self.preemption_bound.is_some() && prev.is_some_and(|p| candidates.contains(&p));
            (
                if keep_prev {
                    prev.unwrap()
                } else {
                    candidates[0]
                },
                !self.dead,
            )
        };
        if branch {
            let mut sibling_sleep = self.sleep.clone();
            sibling_sleep.push((chosen, pending[chosen].expect("chosen is enabled")));
            for &alt in candidates.iter().filter(|&&t| t != chosen) {
                if let Some(bound) = self.preemption_bound {
                    if self.preemptions + Self::switch_cost(prev, alt, choosable) > bound {
                        self.bounded = true;
                        continue;
                    }
                }
                let mut alt_prefix = self.taken.clone();
                alt_prefix.push(alt as u8);
                // The sibling's sleep set holds at the state *after* its
                // prefix, whose final step is `alt` itself — so entries
                // dependent on `alt`'s access must wake now, exactly as
                // the `retain` below wakes sleepers when `chosen` runs.
                // Keeping them asleep prunes subtrees that were never
                // covered (the bug the `triple_broken` fixture exposed).
                let alt_acc = pending[alt].expect("alt is enabled");
                let woken: Vec<(usize, Access)> = sibling_sleep
                    .iter()
                    .copied()
                    .filter(|&(t, a)| t != alt && a.independent(alt_acc))
                    .collect();
                self.siblings.push((alt_prefix, woken));
                sibling_sleep.push((alt, alt_acc));
            }
        }
        let acc = pending[chosen].expect("chosen is enabled");
        self.sleep
            .retain(|&(t, a)| t != chosen && a.independent(acc));
        self.preemptions += Self::switch_cost(prev, chosen, choosable);
        self.taken.push(chosen as u8);
        Ok(chosen)
    }
}

/// PCT decider: highest random priority wins; priorities drop at the
/// run's randomly chosen change points.
struct PctDecider {
    /// Priority per thread id, grown lazily; higher wins.
    priorities: Vec<u64>,
    change_at: Vec<u64>,
    next_low: u64,
    rng_stream: SplitMix64,
    steps: u64,
}

impl PctDecider {
    fn new(rng: &mut SplitMix64, depth: u32, horizon: u64) -> PctDecider {
        let change_at = (1..depth.max(1))
            .map(|_| rng.gen_range(1, horizon.max(2) as usize) as u64)
            .collect();
        PctDecider {
            priorities: Vec::new(),
            change_at,
            next_low: 1_000,
            rng_stream: SplitMix64::new(rng.next_u64()),
            steps: 0,
        }
    }

    fn priority(&mut self, t: usize) -> u64 {
        while self.priorities.len() <= t {
            // Initial priorities are all above the change-point band.
            let p = 1_000_000 + self.rng_stream.next_u64() % 1_000_000;
            self.priorities.push(p);
        }
        self.priorities[t]
    }
}

impl Decider for PctDecider {
    fn choose(
        &mut self,
        _step: usize,
        choosable: &[usize],
        _enabled: &[usize],
        _pending: &[Option<Access>],
        _prev: Option<usize>,
    ) -> Result<usize, String> {
        self.steps += 1;
        let mut pick = choosable[0];
        let mut best = self.priority(pick);
        for &t in &choosable[1..] {
            let p = self.priority(t);
            if p > best {
                best = p;
                pick = t;
            }
        }
        if self.change_at.contains(&self.steps) {
            // Demote the thread about to run below everything else and
            // re-pick.
            self.next_low -= 1;
            self.priorities[pick] = self.next_low;
            let mut repick = choosable[0];
            let mut best = self.priority(repick);
            for &t in &choosable[1..] {
                let p = self.priority(t);
                if p > best {
                    best = p;
                    repick = t;
                }
            }
            pick = repick;
        }
        Ok(pick)
    }
}

/// Replay decider: the recorded schedule, verbatim.
struct ReplayDecider<'a> {
    schedule: &'a [u8],
}

impl Decider for ReplayDecider<'_> {
    fn choose(
        &mut self,
        step: usize,
        _choosable: &[usize],
        enabled: &[usize],
        _pending: &[Option<Access>],
        _prev: Option<usize>,
    ) -> Result<usize, String> {
        let Some(&want) = self.schedule.get(step) else {
            return Err(format!(
                "execution still running after the schedule's {} steps",
                self.schedule.len()
            ));
        };
        let want = want as usize;
        if !enabled.contains(&want) {
            return Err(format!(
                "step {step}: schedule names thread {want}, which is not enabled"
            ));
        }
        Ok(want)
    }
}
