//! Scheduler-instrumented shared-state shims, mirroring the
//! `wfc_registers::cell` provider API.
//!
//! Each shim holds its value behind the execution's engine lock and
//! yields to the scheduler at every access, so fixture code written
//! against the [`CellProvider`] abstraction (or against [`Cell`]
//! directly) runs under controlled interleavings. Shims can only be
//! created inside an execution ([`crate::explore`] / [`crate::replay`])
//! — construction allocates a deterministic cell id from the ambient
//! execution context.

use std::mem::MaybeUninit;
use std::sync::{Arc, Mutex};

use wfc_registers::{CellProvider, RawAtomicBool, RawAtomicUsize, RawData};

use crate::exec::{self, AccessKind, ExecCtx};

pub(crate) struct SharedCell<V> {
    exec: Arc<ExecCtx>,
    id: u32,
    value: Mutex<V>,
}

impl<V: Send> SharedCell<V> {
    pub(crate) fn new(value: V) -> SharedCell<V> {
        let (exec, _) = exec::current().expect(
            "sched cells must be created inside an execution \
             (wfc_sched::explore / wfc_sched::replay scenario)",
        );
        let id = exec.alloc_cell();
        SharedCell {
            exec,
            id,
            value: Mutex::new(value),
        }
    }

    /// One scheduler-visible access. `op` gets the value and the logical
    /// step of the grant, and reports whether it modified the cell.
    pub(crate) fn perform<R>(
        &self,
        kind: AccessKind,
        op: impl FnOnce(&mut V, u64) -> (R, bool),
    ) -> R {
        self.exec.access(self.id, kind, |step| {
            let mut value = self.value.lock().unwrap_or_else(|e| e.into_inner());
            op(&mut value, step)
        })
    }
}

impl<V> std::fmt::Debug for SharedCell<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedCell").field("id", &self.id).finish()
    }
}

/// A scheduler-instrumented atomic cell for `Copy` values: one yield
/// point per load or store (the model-checking counterpart of a
/// hardware atomic register).
#[derive(Debug)]
pub struct Cell<T>(SharedCell<T>);

impl<T: Copy + Send> Cell<T> {
    /// Creates a cell initialised to `value` (inside an execution only).
    pub fn new(value: T) -> Cell<T> {
        Cell(SharedCell::new(value))
    }

    /// Atomically loads the value (one scheduler event).
    pub fn load(&self) -> T {
        self.0.perform(AccessKind::Read, |v, _| (*v, false))
    }

    /// Atomically stores the value (one scheduler event).
    pub fn store(&self, value: T) {
        self.0.perform(AccessKind::Write, |v, _| {
            *v = value;
            ((), true)
        })
    }
}

/// The shim atomic `usize` ([`RawAtomicUsize`] under the scheduler).
#[derive(Debug)]
pub struct AtomicUsize(SharedCell<usize>);

impl RawAtomicUsize for AtomicUsize {
    fn new(value: usize) -> Self {
        AtomicUsize(SharedCell::new(value))
    }
    fn load_acquire(&self) -> usize {
        self.0.perform(AccessKind::Read, |v, _| (*v, false))
    }
    fn load_relaxed(&self) -> usize {
        self.0.perform(AccessKind::Read, |v, _| (*v, false))
    }
    fn store_release(&self, value: usize) {
        self.0.perform(AccessKind::Write, |v, _| {
            *v = value;
            ((), true)
        })
    }
    fn cas_weak_acquire(&self, current: usize, new: usize) -> Result<usize, usize> {
        // Announced as a write even when it fails: a failing CAS still
        // must not commute with writes of the same cell.
        self.0.perform(AccessKind::Write, |v, _| {
            if *v == current {
                *v = new;
                (Ok(current), true)
            } else {
                (Err(*v), false)
            }
        })
    }
    fn swap_acq_rel(&self, value: usize) -> usize {
        self.0.perform(AccessKind::Write, |v, _| {
            let old = *v;
            *v = value;
            (old, true)
        })
    }
}

/// The shim atomic `bool` ([`RawAtomicBool`] under the scheduler).
#[derive(Debug)]
pub struct AtomicBool(SharedCell<bool>);

impl RawAtomicBool for AtomicBool {
    fn new(value: bool) -> Self {
        AtomicBool(SharedCell::new(value))
    }
    fn load_acquire(&self) -> bool {
        self.0.perform(AccessKind::Read, |v, _| (*v, false))
    }
    fn store_release(&self, value: bool) {
        self.0.perform(AccessKind::Write, |v, _| {
            *v = value;
            ((), true)
        })
    }
}

/// The shim payload slot ([`RawData`] under the scheduler).
///
/// The model is coarser than hardware in exactly one respect: a payload
/// write is a single scheduler event, so an overlapping read observes
/// the old or the new value, never torn bytes. The seqlock protocol
/// *around* the payload — where the new/old inversion and validation
/// bugs live — is interleaved in full. Tearing itself is modelled
/// explicitly by the two-word broken fixture.
#[derive(Debug)]
pub struct Data<T>(SharedCell<T>);

impl<T: Copy + Send> RawData<T> for Data<T> {
    fn new(value: T) -> Self {
        Data(SharedCell::new(value))
    }
    fn read_maybe_torn(&self) -> MaybeUninit<T> {
        self.0
            .perform(AccessKind::Read, |v, _| (MaybeUninit::new(*v), false))
    }
    fn write(&self, value: T) {
        self.0.perform(AccessKind::Write, |v, _| {
            *v = value;
            ((), true)
        })
    }
}

/// The scheduler-backed [`CellProvider`]: plug into any construction in
/// `wfc-registers` to run it under the model checker.
#[derive(Debug, Default, Clone, Copy)]
pub struct SchedProvider;

impl CellProvider for SchedProvider {
    type AtomicUsize = AtomicUsize;
    type AtomicBool = AtomicBool;
    type Data<T: Copy + Send + 'static> = Data<T>;

    /// The scheduler simulates sequential consistency; fences are no-ops.
    fn fence_acquire() {}
    /// Every retry iteration already yields at its atomic access.
    fn spin_hint() {}
}
