//! `wfc-sched`: a deterministic schedule-exploration model checker for
//! the repo's concrete register implementations.
//!
//! The crate runs real implementation code — the seqlock SRSW register,
//! the Section 4.3 bounded bit over one-use bits, the MRSW
//! constructions — under a cooperative scheduler that controls every
//! interleaving of shared-memory accesses. Implementations participate
//! through the [`wfc_registers::CellProvider`] abstraction: in
//! production they run on [`wfc_registers::RealProvider`] (plain
//! hardware atomics, zero overhead); under the checker they run on
//! [`SchedProvider`], whose cells yield to the scheduler at every
//! access.
//!
//! Three exploration strategies live behind one [`SchedOptions`]:
//!
//! * **exhaustive DFS** with optional sleep-set pruning of commuting
//!   access pairs (sound for history checking because every [`OpLog`]
//!   stamp is itself a scheduler event — see [`crate::log`'s
//!   module docs](OpLog)),
//! * **iterative preemption bounding** (≤ k preemptions, k rising),
//! * **PCT-style random walks** seeded from the in-repo SplitMix64.
//!
//! Every run is replayable: a violating execution reports its
//! [`Schedule`] as a compact base-36 string which [`replay`] (or
//! `wfc sched <target> replay=…`) re-executes deterministically —
//! replaying the same schedule twice yields byte-identical verdicts.
//!
//! ```
//! use wfc_sched::{explore, fixtures, Mode, SchedOptions};
//!
//! // Exhaustively check the planted-bug register: a torn two-word
//! // write with no seqlock validation. The checker finds a torn read
//! // and hands back the schedule that produces it.
//! let options = SchedOptions::default().with_mode(Mode::Exhaustive { sleep_sets: true });
//! let mut build = fixtures::build("broken").unwrap();
//! let found = explore(&options, &mut build).unwrap();
//! let cx = found.counterexample.expect("the planted bug is found");
//! assert!(cx.message.contains("torn read"));
//! ```

#![warn(missing_docs)]

mod exec;
pub mod explore;
pub mod fixtures;
mod log;
pub mod query;
mod schedule;
mod shim;

pub use exec::{Access, AccessKind, Execution};
pub use explore::{
    explore, replay, Counterexample, Exploration, Mode, Replayed, SchedError, SchedOptions,
};
pub use log::{render_history, OpLog};
pub use query::{SchedSpec, SpecMode};
pub use schedule::Schedule;
pub use shim::{AtomicBool, AtomicUsize, Cell, Data, SchedProvider};
