//! Named model-checking targets: the repo's concrete register
//! implementations rebuilt over [`SchedProvider`] cells, plus a
//! deliberately broken register that the checker must catch.
//!
//! Each fixture is a small closed concurrent program — a writer and one
//! or two readers exchanging values through a register implementation —
//! whose operation history is recorded with [`OpLog`] and judged after
//! the execution, usually by linearizability against the matching
//! [`wfc_spec::canonical`] register type. The fixtures marked
//! `expect_violation` are the negative controls: `regular` tolerates the
//! new/old inversion an atomic register forbids, and `broken` writes its
//! value as two independent words with no seqlock validation, so a
//! reader overlapping the write observes a torn value.
//!
//! The `ring` / `triple` / `cell` trio model-checks the `wfc-waitfree`
//! primitives — the *fixture-before-hot-path* rule: each primitive's
//! unmodified generic code runs here over [`SchedProvider`] and must
//! survive exhaustive DFS before it is allowed to replace a mutex in
//! the engine. Each has a hand-rolled `_broken` twin with a planted
//! algorithmic bug (premature index publication, a non-atomic
//! publish swap, state-before-payload) that the checker must catch
//! with a replayable counterexample.

use std::sync::{Arc, Mutex};

use wfc_core::{bounded_bit_with, OneUseRead, OneUseWrite};
use wfc_explorer::linearizability::is_linearizable;
use wfc_registers::{
    atomic_bit_in, atomic_reg_in, mrsw_atomic_register, mrsw_regular_bit, BitReader, BitWriter,
    RawAtomicBool, RawAtomicUsize, RegReader, RegWriter, SeqLockCell, Stamped,
};
use wfc_spec::{canonical, FiniteType, PortId};

use crate::exec::Execution;
use crate::log::{render_history, OpLog};
use crate::shim::{self, Cell, SchedProvider};

/// A named model-checking target.
#[derive(Clone, Copy, Debug)]
pub struct Fixture {
    /// The target name accepted by [`build`] and `wfc sched`.
    pub name: &'static str,
    /// One-line description of the scenario.
    pub summary: &'static str,
    /// Number of virtual threads the scenario spawns.
    pub threads: usize,
    /// `true` if exploring the fixture is expected to find a violation.
    pub expect_violation: bool,
}

/// Every fixture, in presentation order.
pub const ALL: &[Fixture] = &[
    Fixture {
        name: "srsw",
        summary: "SRSW seqlock register, 1 write vs 2 sequential reads (exhaustive-feasible)",
        threads: 2,
        expect_violation: false,
    },
    Fixture {
        name: "seqlock",
        summary: "SeqLockCell over a two-word payload, 2 writes vs 2 reads",
        threads: 2,
        expect_violation: false,
    },
    Fixture {
        name: "t4",
        summary: "Section 4.3 bounded bit over one-use bits, 1 write vs 2 reads",
        threads: 2,
        expect_violation: false,
    },
    Fixture {
        name: "mrsw",
        summary: "MRSW atomic register over SRSW seqlocks, 1 write vs 2 readers",
        threads: 3,
        expect_violation: false,
    },
    Fixture {
        name: "repl",
        summary: "wfc-repl commit rule at N=3: CAS-reserved log indices, agreement + validity",
        threads: 2,
        expect_violation: false,
    },
    Fixture {
        name: "repl_broken",
        summary: "planted replication bug: load-then-store index reservation forks the log",
        threads: 2,
        expect_violation: true,
    },
    Fixture {
        name: "ring",
        summary: "wfc-waitfree SPSC ring (capacity 1): 2 pushes vs 2 blocking pops, FIFO intact",
        threads: 2,
        expect_violation: false,
    },
    Fixture {
        name: "ring_broken",
        summary: "planted ring bug: tail published before the slot write, pop sees a ghost",
        threads: 2,
        expect_violation: true,
    },
    Fixture {
        name: "triple",
        summary: "wfc-waitfree triple buffer: 2 publishes vs a refreshing reader, snapshots stable",
        threads: 2,
        expect_violation: false,
    },
    Fixture {
        name: "triple_broken",
        summary:
            "planted triple-buffer bug: publish by load+store, writer reclaims the reader's front",
        threads: 2,
        expect_violation: true,
    },
    Fixture {
        name: "cell",
        summary: "wfc-waitfree write-once cell: set(7) vs a polling take, handoff exactly once",
        threads: 2,
        expect_violation: false,
    },
    Fixture {
        name: "cell_broken",
        summary:
            "planted cell bug: state published before the payload, take returns the placeholder",
        threads: 2,
        expect_violation: true,
    },
    Fixture {
        name: "regular",
        summary: "MRSW *regular* bit vs the atomic spec: new/old inversion across readers",
        threads: 3,
        expect_violation: true,
    },
    Fixture {
        name: "broken",
        summary: "broken register: torn two-word write, no seqlock validation",
        threads: 2,
        expect_violation: true,
    },
];

/// Looks up a fixture by name.
pub fn find(name: &str) -> Option<&'static Fixture> {
    ALL.iter().find(|f| f.name == name)
}

/// A reusable scenario builder: called once per explored schedule.
pub type Builder = Box<dyn FnMut() -> Execution + Send>;

/// The scenario builder for a fixture name, or `None` if unknown.
pub fn build(name: &str) -> Option<Builder> {
    match name {
        "srsw" => Some(Box::new(build_srsw)),
        "seqlock" => Some(Box::new(build_seqlock)),
        "t4" => Some(Box::new(build_t4)),
        "mrsw" => Some(Box::new(build_mrsw)),
        "repl" => Some(Box::new(|| build_repl(true))),
        "repl_broken" => Some(Box::new(|| build_repl(false))),
        "ring" => Some(Box::new(build_ring)),
        "ring_broken" => Some(Box::new(build_ring_broken)),
        "triple" => Some(Box::new(build_triple)),
        "triple_broken" => Some(Box::new(build_triple_broken)),
        "cell" => Some(Box::new(build_cell)),
        "cell_broken" => Some(Box::new(build_cell_broken)),
        "regular" => Some(Box::new(build_regular)),
        "broken" => Some(Box::new(build_broken)),
        _ => None,
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The standard verdict: the recorded history must linearize against
/// `ty` from the state named `init`.
fn not_linearizable(ty: &FiniteType, init: &str, log: &OpLog) -> Option<String> {
    let init = ty.state_id(init).expect("fixture init state exists");
    if is_linearizable(ty, init, &log.history()) {
        None
    } else {
        Some(format!(
            "history is not linearizable against {}:\n{}",
            ty.name(),
            render_history(ty, &log.snapshot())
        ))
    }
}

/// `srsw`: one writer stores 1 into an SRSW seqlock register while the
/// reader reads twice in sequence. The acceptance property of the whole
/// subsystem: no schedule shows the new/old inversion `(1, 0)`.
fn build_srsw() -> Execution {
    let ty = canonical::register(2, 2);
    let read_inv = ty.invocation_id("read").expect("read");
    let write1 = ty.invocation_id("write1").expect("write1");
    let ok = ty.response_id("ok").expect("ok");
    let resp = [
        ty.response_id("0").expect("resp 0"),
        ty.response_id("1").expect("resp 1"),
    ];
    let (mut w, mut r) = atomic_reg_in::<usize, SchedProvider>(0);
    let log = Arc::new(OpLog::new());
    let reads: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let writer = {
        let log = Arc::clone(&log);
        Box::new(move || {
            let t0 = log.stamp();
            w.write(1);
            let t1 = log.stamp();
            log.record(PortId::new(0), write1, ok, t0, t1);
        }) as Box<dyn FnOnce() + Send>
    };
    let reader = {
        let log = Arc::clone(&log);
        let reads = Arc::clone(&reads);
        Box::new(move || {
            for _ in 0..2 {
                let t0 = log.stamp();
                let v = r.read();
                let t1 = log.stamp();
                log.record(PortId::new(1), read_inv, resp[v.min(1)], t0, t1);
                lock(&reads).push(v);
            }
        }) as Box<dyn FnOnce() + Send>
    };
    Execution {
        threads: vec![writer, reader],
        check: Box::new(move || {
            if lock(&reads)[..] == [1, 0] {
                return Some(format!(
                    "new/old inversion (1, 0): the first read returned the new value 1, \
                     the second the old value 0\n{}",
                    render_history(&ty, &log.snapshot())
                ));
            }
            not_linearizable(&ty, "v0", &log)
        }),
    }
}

/// `seqlock`: a [`SeqLockCell`] over a two-word payload, driven directly:
/// the writer stores `(1, 1)` then `(2, 2)`, the reader loads twice.
/// Every loaded pair must be intact, and the history must linearize
/// against a three-valued register.
fn build_seqlock() -> Execution {
    let ty = canonical::register(3, 2);
    let read_inv = ty.invocation_id("read").expect("read");
    let writes = [
        ty.invocation_id("write1").expect("write1"),
        ty.invocation_id("write2").expect("write2"),
    ];
    let ok = ty.response_id("ok").expect("ok");
    let resp: Vec<_> = (0..3)
        .map(|v| ty.response_id(&v.to_string()).expect("value response"))
        .collect();
    let cell = Arc::new(SeqLockCell::<(usize, usize), SchedProvider>::new((0, 0)));
    let log = Arc::new(OpLog::new());
    let torn: Arc<Mutex<Option<(usize, usize)>>> = Arc::new(Mutex::new(None));
    let writer = {
        let cell = Arc::clone(&cell);
        let log = Arc::clone(&log);
        Box::new(move || {
            for (k, &inv) in writes.iter().enumerate() {
                let v = k + 1;
                let t0 = log.stamp();
                cell.store((v, v));
                let t1 = log.stamp();
                log.record(PortId::new(0), inv, ok, t0, t1);
            }
        }) as Box<dyn FnOnce() + Send>
    };
    let reader = {
        let cell = Arc::clone(&cell);
        let log = Arc::clone(&log);
        let torn = Arc::clone(&torn);
        Box::new(move || {
            for _ in 0..2 {
                let t0 = log.stamp();
                let (a, b) = cell.load();
                let t1 = log.stamp();
                if a != b {
                    lock(&torn).get_or_insert((a, b));
                }
                log.record(PortId::new(1), read_inv, resp[a.min(2)], t0, t1);
            }
        }) as Box<dyn FnOnce() + Send>
    };
    Execution {
        threads: vec![writer, reader],
        check: Box::new(move || {
            if let Some((a, b)) = *lock(&torn) {
                return Some(format!(
                    "seqlock returned a torn pair ({a}, {b})\n{}",
                    render_history(&ty, &log.snapshot())
                ));
            }
            not_linearizable(&ty, "v0", &log)
        }),
    }
}

/// `t4`: the paper's Section 4.3 bounded SRSW bit, built from one-use
/// bits over scheduler-instrumented flags. One value-changing write
/// against two reads; the history must linearize as a boolean register.
fn build_t4() -> Execution {
    let ty = canonical::register(2, 2);
    let read_inv = ty.invocation_id("read").expect("read");
    let write1 = ty.invocation_id("write1").expect("write1");
    let ok = ty.response_id("ok").expect("ok");
    let resp = [
        ty.response_id("0").expect("resp 0"),
        ty.response_id("1").expect("resp 1"),
    ];
    let (mut w, mut r) = bounded_bit_with(false, 2, 1, sched_one_use_bit);
    let log = Arc::new(OpLog::new());
    let writer = {
        let log = Arc::clone(&log);
        Box::new(move || {
            let t0 = log.stamp();
            w.write(true).expect("within write budget");
            let t1 = log.stamp();
            log.record(PortId::new(0), write1, ok, t0, t1);
        }) as Box<dyn FnOnce() + Send>
    };
    let reader = {
        let log = Arc::clone(&log);
        Box::new(move || {
            for _ in 0..2 {
                let t0 = log.stamp();
                let v = r.read().expect("within read budget");
                let t1 = log.stamp();
                log.record(PortId::new(1), read_inv, resp[usize::from(v)], t0, t1);
            }
        }) as Box<dyn FnOnce() + Send>
    };
    Execution {
        threads: vec![writer, reader],
        check: Box::new(move || not_linearizable(&ty, "v0", &log)),
    }
}

/// `mrsw`: the stamped MRSW atomic register over SRSW seqlocks. One
/// write of 1 against two concurrent readers (ports 1 and 2); readers
/// help each other, so the history must linearize.
fn build_mrsw() -> Execution {
    let ty = canonical::register(2, 3);
    let read_inv = ty.invocation_id("read").expect("read");
    let write1 = ty.invocation_id("write1").expect("write1");
    let ok = ty.response_id("ok").expect("ok");
    let resp = [
        ty.response_id("0").expect("resp 0"),
        ty.response_id("1").expect("resp 1"),
    ];
    let (mut w, readers) = mrsw_atomic_register(0usize, 2, |init| {
        atomic_reg_in::<Stamped<usize>, SchedProvider>(init)
    });
    let log = Arc::new(OpLog::new());
    let mut threads: Vec<Box<dyn FnOnce() + Send>> = vec![{
        let log = Arc::clone(&log);
        Box::new(move || {
            let t0 = log.stamp();
            w.write(1);
            let t1 = log.stamp();
            log.record(PortId::new(0), write1, ok, t0, t1);
        })
    }];
    for (j, mut r) in readers.into_iter().enumerate() {
        let log = Arc::clone(&log);
        threads.push(Box::new(move || {
            let t0 = log.stamp();
            let v = r.read();
            let t1 = log.stamp();
            log.record(PortId::new(j + 1), read_inv, resp[v.min(1)], t0, t1);
        }));
    }
    Execution {
        threads,
        check: Box::new(move || not_linearizable(&ty, "v0", &log)),
    }
}

/// `repl` / `repl_broken`: the `wfc-repl` commit rule's index
/// assignment as a closed concurrent program — the dogfood fixture the
/// replication subsystem asked for. Two proposers race to reserve log
/// indices from a shared counter, then replicate their entry into that
/// slot on all three simulated nodes and read their slot back from
/// every replica. The post-state check is the commit rule's contract:
///
/// * **agreement** — no two proposals land at the same index, and every
///   replica's copy of a slot is the value its proposer put there;
/// * **validity** — every occupied slot holds a proposed value.
///
/// With `cas: true` the reservation is a compare-and-swap loop (the
/// real sequencer's discipline, serialised there by the single IO
/// thread; CAS is its shared-memory shadow), and no schedule violates
/// the contract. With `cas: false` the reservation is the planted bug —
/// a load *then* a store — so two proposers can both read index 0 and
/// fork the log: either a replica's slot 0 readback disagrees with what
/// its proposer wrote, or both proposals claim index 0 outright.
fn build_repl(cas: bool) -> Execution {
    const NODES: usize = 3;
    const SLOTS: usize = 2;
    let next = Arc::new(<shim::AtomicUsize as RawAtomicUsize>::new(0));
    let logs: Arc<Vec<Vec<Cell<usize>>>> = Arc::new(
        (0..NODES)
            .map(|_| (0..SLOTS).map(|_| Cell::new(0)).collect())
            .collect(),
    );
    // (proposed value, assigned index, per-node readback of that slot)
    type Commit = (usize, usize, Vec<usize>);
    let commits: Arc<Mutex<Vec<Commit>>> = Arc::new(Mutex::new(Vec::new()));
    let mut threads: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    for value in 1..=SLOTS {
        let next = Arc::clone(&next);
        let logs = Arc::clone(&logs);
        let commits = Arc::clone(&commits);
        threads.push(Box::new(move || {
            let index = if cas {
                loop {
                    let cur = next.load_acquire();
                    if next.cas_weak_acquire(cur, cur + 1).is_ok() {
                        break cur;
                    }
                }
            } else {
                // The planted bug: reservation is not atomic.
                let cur = next.load_acquire();
                next.store_release(cur + 1);
                cur
            };
            if index < SLOTS {
                for node in logs.iter() {
                    node[index].store(value);
                }
                let readback = logs.iter().map(|node| node[index].load()).collect();
                lock(&commits).push((value, index, readback));
            }
        }));
    }
    Execution {
        threads,
        check: Box::new(move || {
            let commits = lock(&commits);
            let mut taken = [false; SLOTS];
            for &(value, index, ref readback) in commits.iter() {
                if taken[index] {
                    return Some(format!(
                        "agreement violated: two proposals were assigned log index {index}"
                    ));
                }
                taken[index] = true;
                for (node, &seen) in readback.iter().enumerate() {
                    if seen != value {
                        return Some(format!(
                            "agreement violated: node {node} holds {seen} at index {index}, \
                             its proposer committed {value}"
                        ));
                    }
                }
            }
            // Validity over the final replica state: every occupied
            // slot holds a value some proposer committed there.
            for (index, &taken) in taken.iter().enumerate() {
                for (node, log) in logs.iter().enumerate() {
                    let held = log[index].load();
                    let committed = commits
                        .iter()
                        .find(|&&(_, i, _)| i == index)
                        .map(|&(v, ..)| v);
                    let valid = match (taken, committed) {
                        (true, Some(v)) => held == v,
                        _ => held == 0,
                    };
                    if !valid {
                        return Some(format!(
                            "validity violated: node {node} holds {held} at index {index}, \
                             which no proposal committed"
                        ));
                    }
                }
            }
            None
        }),
    }
}

/// `ring`: the `wfc-waitfree` SPSC ring at capacity 1 — the tightest
/// configuration, where every push after the first must wait for the
/// matching pop and the head/tail protocol is exercised end to end.
/// The producer pushes 1 then 2 (retrying while full); the consumer
/// pops twice (retrying while empty). FIFO at capacity 1 means the
/// consumer must observe exactly `[1, 2]` — a stale or premature slot
/// read shows up as a ghost value.
fn build_ring() -> Execution {
    let (mut p, mut c) = wfc_waitfree::ring::<usize, SchedProvider>(1, 0);
    let popped: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let producer = Box::new(move || {
        for v in [1usize, 2] {
            let mut v = v;
            // A full-ring retry re-reads only `head`, so the scheduler's
            // spin detector can park this thread until the pop lands.
            while let Err(back) = p.push(v) {
                v = back;
            }
        }
    }) as Box<dyn FnOnce() + Send>;
    let consumer = {
        let popped = Arc::clone(&popped);
        Box::new(move || {
            for _ in 0..2 {
                let v = loop {
                    if let Some(v) = c.pop() {
                        break v;
                    }
                };
                lock(&popped).push(v);
            }
        }) as Box<dyn FnOnce() + Send>
    };
    Execution {
        threads: vec![producer, consumer],
        check: Box::new(move || {
            let popped = lock(&popped);
            if popped[..] != [1, 2] {
                return Some(format!(
                    "FIFO violated: the consumer popped {popped:?}, the producer pushed [1, 2]"
                ));
            }
            None
        }),
    }
}

/// `ring_broken`: the ring's planted bug, hand-rolled over shim cells —
/// the producer publishes the new `tail` *before* writing the slot, so
/// a pop scheduled into that window returns whatever the slot held
/// previously (the initial 0, or the prior value on a wrapped lap).
fn build_ring_broken() -> Execution {
    let slot = Arc::new(Cell::new(0usize));
    let head = Arc::new(<shim::AtomicUsize as RawAtomicUsize>::new(0));
    let tail = Arc::new(<shim::AtomicUsize as RawAtomicUsize>::new(0));
    let popped: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let producer = {
        let (slot, head, tail) = (Arc::clone(&slot), Arc::clone(&head), Arc::clone(&tail));
        Box::new(move || {
            let (mut own, mut seen) = (0usize, 0usize);
            for v in [1usize, 2] {
                while own - seen == 1 {
                    seen = head.load_acquire();
                }
                // The planted bug: index published before the payload.
                tail.store_release(own + 1);
                slot.store(v);
                own += 1;
            }
        }) as Box<dyn FnOnce() + Send>
    };
    let consumer = {
        let popped = Arc::clone(&popped);
        Box::new(move || {
            let (mut own, mut seen) = (0usize, 0usize);
            for _ in 0..2 {
                while seen == own {
                    seen = tail.load_acquire();
                }
                let v = slot.load();
                own += 1;
                head.store_release(own);
                lock(&popped).push(v);
            }
        }) as Box<dyn FnOnce() + Send>
    };
    Execution {
        threads: vec![producer, consumer],
        check: Box::new(move || {
            let popped = lock(&popped);
            if popped[..] != [1, 2] {
                return Some(format!(
                    "pop observed {popped:?}, but [1, 2] was pushed: \
                     the tail index was published before the slot write"
                ));
            }
            None
        }),
    }
}

/// `triple`: the `wfc-waitfree` triple buffer. The writer publishes 1
/// then 2; the reader waits for the first snapshot, double-reads it
/// (two reads without a refresh must agree — snapshot stability, the
/// permutation invariant made observable), then takes one non-blocking
/// second look. Every snapshot must be a published value (never the
/// initial 0) and snapshots must be monotone — the lossy buffer may
/// skip 1, but can never resurrect it after 2.
fn build_triple() -> Execution {
    let (mut w, mut r) = wfc_waitfree::triple_buffer::<usize, SchedProvider>(0);
    let seen: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let unstable: Arc<Mutex<Option<(usize, usize)>>> = Arc::new(Mutex::new(None));
    let writer = Box::new(move || {
        w.publish(1);
        w.publish(2);
    }) as Box<dyn FnOnce() + Send>;
    let reader = {
        let (seen, unstable) = (Arc::clone(&seen), Arc::clone(&unstable));
        Box::new(move || {
            // A failed refresh is a single load of the state word, so
            // the wait parks cleanly under the spin detector.
            while !r.refresh() {}
            let a = r.read();
            let a2 = r.read();
            if a != a2 {
                lock(&unstable).get_or_insert((a, a2));
            }
            lock(&seen).push(a);
            if r.refresh() {
                lock(&seen).push(r.read());
            }
        }) as Box<dyn FnOnce() + Send>
    };
    Execution {
        threads: vec![writer, reader],
        check: Box::new(move || {
            if let Some((a, b)) = *lock(&unstable) {
                return Some(format!(
                    "snapshot changed underfoot: read {a}, then {b}, with no refresh in between"
                ));
            }
            let seen = lock(&seen);
            if seen.contains(&0) {
                return Some(format!(
                    "a refreshed snapshot returned the initial value: saw {seen:?}"
                ));
            }
            if seen.windows(2).any(|w| w[1] < w[0]) {
                return Some(format!("snapshots went backwards: saw {seen:?}"));
            }
            None
        }),
    }
}

/// `triple_broken`: the triple buffer's planted bug, hand-rolled over
/// shim cells — the writer publishes with a *load then store* instead
/// of one atomic swap. A reader refresh scheduled into that window
/// hands its front buffer to the state word, but the writer's stale
/// `load` result still names that buffer as the next back buffer: the
/// writer reclaims the buffer the reader is holding, and the reader's
/// double-read sees it change underfoot.
fn build_triple_broken() -> Execution {
    const FRESH: usize = 0b100;
    const IDX: usize = 0b011;
    let bufs = Arc::new([Cell::new(0usize), Cell::new(0usize), Cell::new(0usize)]);
    let state = Arc::new(<shim::AtomicUsize as RawAtomicUsize>::new(1));
    let unstable: Arc<Mutex<Option<(usize, usize)>>> = Arc::new(Mutex::new(None));
    let writer = {
        let (bufs, state) = (Arc::clone(&bufs), Arc::clone(&state));
        Box::new(move || {
            let mut back = 2usize;
            for v in [1usize, 2, 3] {
                bufs[back].store(v);
                // The planted bug: publish is not a single swap.
                let old = state.load_acquire();
                state.store_release(back | FRESH);
                back = old & IDX;
            }
        }) as Box<dyn FnOnce() + Send>
    };
    let reader = {
        let (bufs, state) = (Arc::clone(&bufs), Arc::clone(&state));
        let unstable = Arc::clone(&unstable);
        Box::new(move || {
            while state.load_acquire() & FRESH == 0 {}
            // Trade the reader's front buffer (index 0) for the middle.
            let front = state.swap_acq_rel(0) & IDX;
            let a = bufs[front].load();
            let b = bufs[front].load();
            if a != b {
                lock(&unstable).get_or_insert((a, b));
            }
        }) as Box<dyn FnOnce() + Send>
    };
    Execution {
        threads: vec![writer, reader],
        check: Box::new(move || {
            lock(&unstable).map(|(a, b)| {
                format!(
                    "snapshot changed underfoot: read {a}, then {b}, with no refresh in \
                     between — the writer reclaimed the reader's front buffer"
                )
            })
        }),
    }
}

/// `cell`: the `wfc-waitfree` write-once cell. The setter stores 7; the
/// taker polls `take` until it succeeds. The handoff must deliver
/// exactly the set value — the placeholder 0 escaping would mean the
/// payload was not ordered before the FULL publication.
fn build_cell() -> Execution {
    let cell = Arc::new(wfc_waitfree::WriteOnce::<usize, SchedProvider>::new(0));
    let taken: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let setter = {
        let cell = Arc::clone(&cell);
        Box::new(move || cell.set(7)) as Box<dyn FnOnce() + Send>
    };
    let taker = {
        let taken = Arc::clone(&taken);
        Box::new(move || {
            // An empty-cell `take` is a single load of the state word.
            let v = loop {
                if let Some(v) = cell.take() {
                    break v;
                }
            };
            lock(&taken).push(v);
        }) as Box<dyn FnOnce() + Send>
    };
    Execution {
        threads: vec![setter, taker],
        check: Box::new(move || {
            let taken = lock(&taken);
            if taken[..] != [7] {
                return Some(format!("take returned {taken:?}, but [7] was set"));
            }
            None
        }),
    }
}

/// `cell_broken`: the write-once cell's planted bug, hand-rolled over
/// shim cells — the setter publishes the FULL state *before* writing
/// the payload, so a take scheduled into that window claims the cell
/// and walks away with the placeholder.
fn build_cell_broken() -> Execution {
    const FULL: usize = 2;
    const TAKEN: usize = 3;
    let state = Arc::new(<shim::AtomicUsize as RawAtomicUsize>::new(0));
    let slot = Arc::new(Cell::new(0usize));
    let taken: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let setter = {
        let (state, slot) = (Arc::clone(&state), Arc::clone(&slot));
        Box::new(move || {
            // The planted bug: state published before the payload.
            state.store_release(FULL);
            slot.store(7);
        }) as Box<dyn FnOnce() + Send>
    };
    let taker = {
        let taken = Arc::clone(&taken);
        Box::new(move || {
            let v = loop {
                if state.load_acquire() == FULL && state.swap_acq_rel(TAKEN) == FULL {
                    break slot.load();
                }
            };
            lock(&taken).push(v);
        }) as Box<dyn FnOnce() + Send>
    };
    Execution {
        threads: vec![setter, taker],
        check: Box::new(move || {
            let taken = lock(&taken);
            if taken[..] != [7] {
                return Some(format!(
                    "take returned {taken:?}, but [7] was set: \
                     the FULL state was published before the payload"
                ));
            }
            None
        }),
    }
}

/// `regular`: the MRSW *regular* bit (one copy per reader, updated in
/// order, no helping) judged against the *atomic* spec. There is a
/// schedule where reader 0 sees the new value and finishes before
/// reader 1 starts, yet reader 1 still reads its stale copy — the
/// new/old inversion regularity tolerates and atomicity forbids.
fn build_regular() -> Execution {
    let ty = canonical::register(2, 3);
    let read_inv = ty.invocation_id("read").expect("read");
    let write1 = ty.invocation_id("write1").expect("write1");
    let ok = ty.response_id("ok").expect("ok");
    let resp = [
        ty.response_id("0").expect("resp 0"),
        ty.response_id("1").expect("resp 1"),
    ];
    let (mut w, readers) = mrsw_regular_bit(false, 2, atomic_bit_in::<SchedProvider>);
    let log = Arc::new(OpLog::new());
    let mut threads: Vec<Box<dyn FnOnce() + Send>> = vec![{
        let log = Arc::clone(&log);
        Box::new(move || {
            let t0 = log.stamp();
            w.write(true);
            let t1 = log.stamp();
            log.record(PortId::new(0), write1, ok, t0, t1);
        })
    }];
    for (j, mut r) in readers.into_iter().enumerate() {
        let log = Arc::clone(&log);
        threads.push(Box::new(move || {
            let t0 = log.stamp();
            let v = r.read();
            let t1 = log.stamp();
            log.record(PortId::new(j + 1), read_inv, resp[usize::from(v)], t0, t1);
        }));
    }
    Execution {
        threads,
        check: Box::new(move || not_linearizable(&ty, "v0", &log)),
    }
}

/// `broken`: the planted bug. The register's value is stored as two
/// independent words with no sequence counter and no validation, so a
/// read overlapping the write observes a torn pair. Word pairs map to
/// the values of a four-valued register — `(0,0) → 0`, `(1,1) → 1`,
/// `(1,0) → 2`, `(0,1) → 3` — and the writer only ever writes value 1,
/// so any response of 2 or 3 is unserializable.
fn build_broken() -> Execution {
    let ty = canonical::register(4, 2);
    let read_inv = ty.invocation_id("read").expect("read");
    let write1 = ty.invocation_id("write1").expect("write1");
    let ok = ty.response_id("ok").expect("ok");
    let resp: Vec<_> = (0..4)
        .map(|v| ty.response_id(&v.to_string()).expect("value response"))
        .collect();
    let word0 = Arc::new(Cell::new(0usize));
    let word1 = Arc::new(Cell::new(0usize));
    let log = Arc::new(OpLog::new());
    let torn: Arc<Mutex<Option<(usize, usize)>>> = Arc::new(Mutex::new(None));
    let writer = {
        let (word0, word1) = (Arc::clone(&word0), Arc::clone(&word1));
        let log = Arc::clone(&log);
        Box::new(move || {
            let t0 = log.stamp();
            word0.store(1);
            word1.store(1);
            let t1 = log.stamp();
            log.record(PortId::new(0), write1, ok, t0, t1);
        }) as Box<dyn FnOnce() + Send>
    };
    let reader = {
        let log = Arc::clone(&log);
        let torn = Arc::clone(&torn);
        Box::new(move || {
            for _ in 0..2 {
                let t0 = log.stamp();
                let a = word0.load();
                let b = word1.load();
                let t1 = log.stamp();
                let value = match (a, b) {
                    (0, 0) => 0,
                    (1, 1) => 1,
                    (1, 0) => 2,
                    _ => 3,
                };
                if value >= 2 {
                    lock(&torn).get_or_insert((a, b));
                }
                log.record(PortId::new(1), read_inv, resp[value], t0, t1);
            }
        }) as Box<dyn FnOnce() + Send>
    };
    Execution {
        threads: vec![writer, reader],
        check: Box::new(move || {
            if let Some((a, b)) = *lock(&torn) {
                return Some(format!(
                    "torn read ({a}, {b}): the two words of the register disagree\n{}",
                    render_history(&ty, &log.snapshot())
                ));
            }
            not_linearizable(&ty, "v0", &log)
        }),
    }
}

/// A one-use bit over a scheduler-instrumented atomic flag, feeding the
/// Section 4.3 construction in [`build_t4`].
fn sched_one_use_bit() -> (SchedOneUseWriter, SchedOneUseReader) {
    let cell = Arc::new(<shim::AtomicBool as RawAtomicBool>::new(false));
    (
        SchedOneUseWriter(Arc::clone(&cell)),
        SchedOneUseReader(cell),
    )
}

/// Write capability of a scheduler-instrumented one-use bit.
pub struct SchedOneUseWriter(Arc<shim::AtomicBool>);

/// Read capability of a scheduler-instrumented one-use bit.
pub struct SchedOneUseReader(Arc<shim::AtomicBool>);

impl OneUseWrite for SchedOneUseWriter {
    fn write(self) {
        self.0.store_release(true);
    }
}

impl OneUseRead for SchedOneUseReader {
    fn read(self) -> bool {
        self.0.load_acquire()
    }
}
