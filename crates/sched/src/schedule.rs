//! Compact serialized schedules.
//!
//! A schedule is the sequence of thread indices granted at each step of
//! one execution. It serializes to one base-36 character per step
//! (thread 0 → `'0'`, …, thread 35 → `'z'`), so a failing run prints a
//! short replayable string like `102021101` that tests can pin and
//! `wfc sched --replay` can re-execute deterministically.

use std::fmt;
use std::str::FromStr;

const DIGITS: &[u8; 36] = b"0123456789abcdefghijklmnopqrstuvwxyz";

/// A serialized schedule: the thread index chosen at every step.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Schedule(Vec<u8>);

impl Schedule {
    /// The empty schedule.
    pub fn new() -> Schedule {
        Schedule::default()
    }

    /// Appends a choice.
    ///
    /// # Panics
    ///
    /// Panics if `thread >= 36` (the base-36 encoding's limit).
    pub fn push(&mut self, thread: usize) {
        assert!(thread < 36, "schedule encoding supports at most 36 threads");
        self.0.push(thread as u8);
    }

    /// The number of steps.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if no steps are recorded.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The choices as thread indices.
    pub fn choices(&self) -> &[u8] {
        &self.0
    }

    /// Builds a schedule from raw thread indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= 36`.
    pub fn from_choices(choices: impl IntoIterator<Item = usize>) -> Schedule {
        let mut s = Schedule::new();
        for c in choices {
            s.push(c);
        }
        s
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &c in &self.0 {
            f.write_str(
                std::str::from_utf8(&DIGITS[c as usize..=c as usize]).expect("ascii digit"),
            )?;
        }
        Ok(())
    }
}

impl FromStr for Schedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Schedule, String> {
        let mut out = Vec::with_capacity(s.len());
        for (i, ch) in s.chars().enumerate() {
            let d = match ch {
                '0'..='9' => ch as u8 - b'0',
                'a'..='z' => ch as u8 - b'a' + 10,
                other => {
                    return Err(format!(
                        "schedule char {i} is {other:?}; expected base-36 digit 0-9/a-z"
                    ))
                }
            };
            out.push(d);
        }
        Ok(Schedule(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_display() {
        let s = Schedule::from_choices([0, 1, 2, 10, 35]);
        assert_eq!(s.to_string(), "012az");
        assert_eq!("012az".parse::<Schedule>().unwrap(), s);
    }

    #[test]
    fn rejects_bad_characters() {
        let err = "01!".parse::<Schedule>().unwrap_err();
        assert!(err.contains("char 2"), "{err}");
    }
}
