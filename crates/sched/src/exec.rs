//! The cooperative execution engine: virtual threads carried by pooled
//! OS threads, with strictly one runnable at a time.
//!
//! The engine is loom/shuttle-style *stateless* model checking: every
//! schedule is executed from scratch. A virtual thread runs real fixture
//! code; each shared access (through the shim cells of [`crate::shim`])
//! **announces** itself to the controller — cell id plus read/write kind
//! — and blocks. The controller waits until every virtual thread is
//! *settled* (announced or finished), asks the active
//! [`Decider`] to pick one, grants it, and the granted thread performs
//! its value operation **while still holding the engine lock** before
//! running on to its next announce. Performing the operation under the
//! lock closes the race where the next granted thread could read a cell
//! before the previous grantee's write landed; because the controller
//! only ever chooses among fully settled threads, it also knows every
//! enabled thread's pending access at each choice point, which is what
//! the sleep-set pruning in [`crate::explore`] needs.
//!
//! **Spin detection.** A retry loop (the seqlock reader, a writer
//! waiting out an odd counter) re-reads the same cell until another
//! thread changes it. Granting such a thread again before the cell
//! changes is a pure stutter — it re-announces the identical read — so
//! the controller tracks a per-cell write-version counter and treats a
//! thread as *spin-blocked* (not schedulable) while its pending read
//! repeats its previous **two** granted accesses with the cell's
//! version unmoved since. Two, not one: a single repeat also arises
//! from distinct program points — the seqlock reader's validation read
//! followed by the next attempt's head read — where the thread *is*
//! progressing; after two identical reads with nothing in between, the
//! thread has completed a full loop iteration with an identical outcome
//! and sits at the same program point, so the suppressed third read is
//! a genuine stutter. This keeps the schedule tree finite without a
//! fairness heuristic. (The argument assumes retry loops are
//! state-free, which holds for every loop in the register
//! implementations; a counting loop over identical reads would need a
//! fairness bound instead.)

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use crate::schedule::Schedule;

/// Panic payload used to unwind virtual threads when an execution is
/// abandoned (step budget, replay mismatch, livelock drain).
pub(crate) const ABORT_MSG: &str = "wfc-sched: execution aborted";

/// Sentinel thread id for controller-context code (fixture setup and the
/// post-execution check), whose shared accesses run immediately without
/// scheduling.
pub(crate) const CONTROLLER: usize = usize::MAX;

/// Whether a shared access may modify the cell.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// The access only observes the cell.
    Read,
    /// The access may modify the cell (stores and compare-exchanges).
    Write,
}

/// A pending shared access: which cell, and whether it can write it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Access {
    /// Execution-local cell id (allocation order, deterministic).
    pub cell: u32,
    /// Read or write.
    pub kind: AccessKind,
}

impl Access {
    /// Two accesses commute iff they touch different cells or are both
    /// reads (the DPOR independence relation; a compare-exchange counts
    /// as a write even when it fails).
    pub fn independent(self, other: Access) -> bool {
        self.cell != other.cell || (self.kind == AccessKind::Read && other.kind == AccessKind::Read)
    }
}

pub(crate) struct ExecState {
    /// Per-thread announced access; `None` while running or finished.
    pending: Vec<Option<Access>>,
    finished: Vec<bool>,
    /// The thread currently holding the grant, if any.
    granted: Option<usize>,
    /// Monotone step counter: bumps at every granted access and every
    /// controller-context access, so it doubles as the logical clock
    /// behind [`crate::OpLog`] timestamps.
    step: u64,
    /// Per-cell write-version counters (spin detection).
    versions: Vec<u64>,
    /// Per-thread `(access, version-at-grant)` of the last granted
    /// access (spin detection).
    last: Vec<Option<(Access, u64)>>,
    /// Per-thread granted access before `last` (spin detection needs
    /// two consecutive repeats).
    last2: Vec<Option<(Access, u64)>>,
    /// First panic message from a virtual thread, if any.
    panic: Option<String>,
    /// When set, granted threads unwind immediately (execution drain).
    abort: bool,
    next_cell: u32,
}

pub(crate) struct ExecCtx {
    state: Mutex<ExecState>,
    cv: Condvar,
}

/// Locks tolerantly: a virtual thread that panics between announce and
/// grant consumption can poison the mutex; the state itself stays
/// consistent because every mutation completes before any panic.
fn lock(m: &Mutex<ExecState>) -> MutexGuard<'_, ExecState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<ExecCtx>, usize)>> = const { RefCell::new(None) };
}

/// The executing context of the calling OS thread, if it is carrying a
/// virtual thread or the controller.
pub(crate) fn current() -> Option<(Arc<ExecCtx>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

struct TlsGuard;

fn set_current(ctx: Arc<ExecCtx>, tid: usize) -> TlsGuard {
    CURRENT.with(|c| *c.borrow_mut() = Some((ctx, tid)));
    TlsGuard
}

impl Drop for TlsGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = None);
    }
}

impl ExecCtx {
    fn new() -> ExecCtx {
        ExecCtx {
            state: Mutex::new(ExecState {
                pending: Vec::new(),
                finished: Vec::new(),
                granted: None,
                step: 0,
                versions: Vec::new(),
                last: Vec::new(),
                last2: Vec::new(),
                panic: None,
                abort: false,
                next_cell: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Allocates a fresh cell id (creation order is deterministic: cells
    /// are created by fixture setup code in the controller context).
    pub(crate) fn alloc_cell(&self) -> u32 {
        let mut st = lock(&self.state);
        let id = st.next_cell;
        st.next_cell += 1;
        st.versions.push(0);
        id
    }

    /// Performs one shared access: announce, wait for the grant, run the
    /// value operation under the engine lock, and continue. `op`
    /// receives the step number of the grant (the logical clock) and
    /// reports whether it modified the cell.
    pub(crate) fn access<R>(
        self: &Arc<Self>,
        cell: u32,
        kind: AccessKind,
        op: impl FnOnce(u64) -> (R, bool),
    ) -> R {
        let (ctx, me) = current().expect(
            "sched cell accessed outside an execution; shim cells only work under \
             wfc_sched::explore or wfc_sched::replay",
        );
        assert!(
            Arc::ptr_eq(&ctx, self),
            "sched cell accessed from a different execution than it was created in"
        );
        if me == CONTROLLER {
            let mut st = lock(&self.state);
            st.step += 1;
            let step = st.step;
            let (r, wrote) = op(step);
            if wrote {
                st.versions[cell as usize] += 1;
            }
            return r;
        }
        let access = Access { cell, kind };
        let mut st = lock(&self.state);
        st.pending[me] = Some(access);
        self.cv.notify_all();
        while st.granted != Some(me) {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.granted = None;
        st.pending[me] = None;
        if st.abort {
            self.cv.notify_all();
            drop(st);
            // resume_unwind skips the panic hook: an abort is engine
            // control flow, not a reportable thread panic.
            std::panic::resume_unwind(Box::new(ABORT_MSG));
        }
        st.last2[me] = st.last[me];
        st.last[me] = Some((access, st.versions[cell as usize]));
        st.step += 1;
        let step = st.step;
        let (r, wrote) = op(step);
        if wrote {
            st.versions[cell as usize] += 1;
        }
        self.cv.notify_all();
        drop(st);
        r
    }
}

/// One execution of a scenario: the virtual-thread bodies plus the
/// post-execution verdict.
pub struct Execution {
    /// The virtual threads; each runs fixture code over shim cells.
    pub threads: Vec<Box<dyn FnOnce() + Send + 'static>>,
    /// Runs in the controller context after all threads finish; returns
    /// a violation message if the execution's history is bad.
    pub check: Box<dyn FnOnce() -> Option<String>>,
}

impl std::fmt::Debug for Execution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Execution")
            .field("threads", &self.threads.len())
            .finish_non_exhaustive()
    }
}

/// The outcome of running one schedule.
#[derive(Debug)]
pub(crate) struct RunResult {
    pub schedule: Schedule,
    pub steps: u64,
    pub preemptions: u32,
    /// Thread panic or failed post-check.
    pub violation: Option<String>,
    /// The per-execution step budget tripped.
    pub aborted: bool,
    /// The decider rejected a step (replay mismatch).
    pub decider_error: Option<String>,
}

/// Chooses the next thread at each settled choice point.
pub(crate) trait Decider {
    /// Picks among `choosable` (enabled and not spin-blocked; never
    /// empty). `enabled` additionally lists spin-blocked threads;
    /// returning one of those is allowed (replay follows recorded
    /// schedules verbatim). `prev` is the previously granted thread.
    fn choose(
        &mut self,
        step: usize,
        choosable: &[usize],
        enabled: &[usize],
        pending: &[Option<Access>],
        prev: Option<usize>,
    ) -> Result<usize, String>;
}

/// A pool of OS threads carrying virtual threads, reused across the many
/// executions of an exploration (spawning per schedule would dominate
/// the runtime).
pub(crate) struct Pool {
    workers: Vec<Worker>,
}

struct Worker {
    tx: Option<Sender<Box<dyn FnOnce() + Send + 'static>>>,
    handle: Option<JoinHandle<()>>,
}

impl Pool {
    pub(crate) fn new() -> Pool {
        Pool {
            workers: Vec::new(),
        }
    }

    fn ensure(&mut self, n: usize) {
        while self.workers.len() < n {
            let (tx, rx) = std::sync::mpsc::channel::<Box<dyn FnOnce() + Send + 'static>>();
            let handle = std::thread::Builder::new()
                .name(format!("wfc-sched-{}", self.workers.len()))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawn sched pool worker");
            self.workers.push(Worker {
                tx: Some(tx),
                handle: Some(handle),
            });
        }
    }

    fn submit(&mut self, slot: usize, job: Box<dyn FnOnce() + Send + 'static>) {
        self.ensure(slot + 1);
        self.workers[slot]
            .tx
            .as_ref()
            .expect("pool worker sender live")
            .send(job)
            .expect("pool worker alive");
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        for w in &mut self.workers {
            w.tx = None; // close the channel; the worker loop exits
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

fn settled(st: &ExecState, t: usize) -> bool {
    st.pending[t].is_some() || st.finished[t]
}

fn all_settled(st: &ExecState) -> bool {
    (0..st.pending.len()).all(|t| settled(st, t))
}

fn spin_blocked(st: &ExecState, t: usize) -> bool {
    match (st.pending[t], st.last[t], st.last2[t]) {
        (Some(acc), Some((last, version)), Some((last2, _))) => {
            acc == last
                && acc == last2
                && acc.kind == AccessKind::Read
                && st.versions[acc.cell as usize] == version
        }
        _ => false,
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "virtual thread panicked".to_owned()
    }
}

/// Runs one execution of `build`'s scenario under `decider`.
pub(crate) fn run_one(
    pool: &mut Pool,
    build: &mut dyn FnMut() -> Execution,
    decider: &mut dyn Decider,
    max_steps: u64,
) -> RunResult {
    let ctx = Arc::new(ExecCtx::new());
    let _tls = set_current(Arc::clone(&ctx), CONTROLLER);
    let execution = build();
    let n = execution.threads.len();
    assert!(n <= 36, "at most 36 virtual threads (schedule encoding)");
    {
        let mut st = lock(&ctx.state);
        st.pending = vec![None; n];
        st.finished = vec![false; n];
        st.last = vec![None; n];
        st.last2 = vec![None; n];
    }
    for (tid, body) in execution.threads.into_iter().enumerate() {
        let ctx = Arc::clone(&ctx);
        pool.submit(
            tid,
            Box::new(move || {
                let tls = set_current(Arc::clone(&ctx), tid);
                let outcome = catch_unwind(AssertUnwindSafe(body));
                drop(tls);
                let mut st = lock(&ctx.state);
                if let Err(payload) = outcome {
                    let msg = panic_message(payload);
                    if msg != ABORT_MSG && st.panic.is_none() {
                        st.panic = Some(format!("virtual thread {tid} panicked: {msg}"));
                    }
                }
                st.finished[tid] = true;
                ctx.cv.notify_all();
            }),
        );
    }

    let mut result = RunResult {
        schedule: Schedule::default(),
        steps: 0,
        preemptions: 0,
        violation: None,
        aborted: false,
        decider_error: None,
    };
    let mut prev: Option<usize> = None;
    let mut st = lock(&ctx.state);
    loop {
        while !all_settled(&st) {
            st = ctx.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        let enabled: Vec<usize> = (0..n).filter(|&t| st.pending[t].is_some()).collect();
        if enabled.is_empty() {
            break;
        }
        let choosable: Vec<usize> = enabled
            .iter()
            .copied()
            .filter(|&t| !spin_blocked(&st, t))
            .collect();
        if choosable.is_empty() {
            // Every enabled thread is spinning on a cell nobody will
            // write again: a genuine livelock in the fixture.
            result.violation = Some(format!(
                "livelock: all enabled threads {enabled:?} are spin-blocked"
            ));
            st = drain(&ctx, st, &enabled);
            continue;
        }
        if result.steps >= max_steps {
            result.aborted = true;
            st = drain(&ctx, st, &enabled);
            continue;
        }
        let chosen = match decider.choose(
            result.schedule.len(),
            &choosable,
            &enabled,
            &st.pending,
            prev,
        ) {
            Ok(t) => t,
            Err(msg) => {
                result.decider_error = Some(msg);
                st = drain(&ctx, st, &enabled);
                continue;
            }
        };
        debug_assert!(enabled.contains(&chosen));
        if prev.is_some_and(|p| p != chosen && choosable.contains(&p)) {
            result.preemptions += 1;
        }
        result.schedule.push(chosen);
        result.steps += 1;
        prev = Some(chosen);
        st.granted = Some(chosen);
        ctx.cv.notify_all();
        while st.granted.is_some() || !settled(&st, chosen) {
            st = ctx.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
    let panic = st.panic.take();
    drop(st);
    if result.violation.is_none() {
        result.violation = panic;
    }
    if result.violation.is_none() && !result.aborted && result.decider_error.is_none() {
        result.violation = (execution.check)();
    }
    result
}

/// Aborts an in-flight execution: grants every remaining pending thread
/// so it unwinds via [`ABORT_MSG`], leaving the pool reusable.
fn drain<'a>(
    ctx: &'a Arc<ExecCtx>,
    mut st: MutexGuard<'a, ExecState>,
    _enabled: &[usize],
) -> MutexGuard<'a, ExecState> {
    st.abort = true;
    loop {
        while !all_settled(&st) {
            st = ctx.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        let next = (0..st.pending.len()).find(|&t| st.pending[t].is_some());
        let Some(t) = next else { return st };
        st.granted = Some(t);
        ctx.cv.notify_all();
        while st.granted.is_some() || !settled(&st, t) {
            st = ctx.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}
