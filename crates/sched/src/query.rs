//! The textual sched-query format shared by `wfc sched` and the
//! `wfc-service` `sched` query kind.
//!
//! A query is one line: a fixture name followed by optional `key=value`
//! settings, e.g. `srsw mode=dfs budget=100000` or
//! `broken replay=101001`. Parsing resolves every default, so
//! [`SchedSpec::canonical_text`] renders the *complete* configuration —
//! the string the service hashes for its cache key — and
//! [`SchedSpec::run`] produces a deterministic JSON document, so served
//! and direct results are byte-identical.

use std::str::FromStr;

use wfc_obs::json::Json;
use wfc_spec::control::{Budget, CancelToken, Wall};

use crate::explore::{explore, replay, Mode, SchedError, SchedOptions};
use crate::fixtures;
use crate::schedule::Schedule;

/// The exploration strategy named in a query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpecMode {
    /// Exhaustive DFS (`mode=dfs`).
    Dfs,
    /// Iterative preemption bounding (`mode=preempt`).
    Preempt,
    /// Seeded PCT random walks (`mode=pct`).
    Pct,
}

impl SpecMode {
    fn as_str(self) -> &'static str {
        match self {
            SpecMode::Dfs => "dfs",
            SpecMode::Preempt => "preempt",
            SpecMode::Pct => "pct",
        }
    }
}

/// A fully resolved sched query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SchedSpec {
    /// The fixture to check (see [`fixtures::ALL`]).
    pub target: String,
    /// The exploration strategy (`mode=`, default `dfs`).
    pub mode: SpecMode,
    /// PCT seed (`seed=`, default 1).
    pub seed: u64,
    /// PCT run count (`runs=`, default 64).
    pub runs: u64,
    /// PCT depth (`depth=`, default 3).
    pub depth: u32,
    /// Largest preemption bound (`preemptions=`, default 2).
    pub preemptions: u32,
    /// Schedule budget (`budget=`, default 200000).
    pub budget: u64,
    /// Per-execution step cap (`steps=`, default 10000).
    pub steps: u64,
    /// Sleep-set pruning for DFS (`sleep=on|off`, default on).
    pub sleep: bool,
    /// Replay this schedule instead of exploring (`replay=`).
    pub replay: Option<Schedule>,
}

impl SchedSpec {
    /// A spec for `target` with every setting at its default.
    pub fn new(target: &str) -> SchedSpec {
        SchedSpec {
            target: target.to_owned(),
            mode: SpecMode::Dfs,
            seed: 1,
            runs: 64,
            depth: 3,
            preemptions: 2,
            budget: 200_000,
            steps: 10_000,
            sleep: true,
            replay: None,
        }
    }

    /// The canonical rendering: every setting resolved, fixed order.
    /// Equal canonical texts mean equal results — the service hashes
    /// this string for its cache key.
    pub fn canonical_text(&self) -> String {
        let mut out = format!(
            "{} mode={} seed={} runs={} depth={} preemptions={} budget={} steps={} sleep={}",
            self.target,
            self.mode.as_str(),
            self.seed,
            self.runs,
            self.depth,
            self.preemptions,
            self.budget,
            self.steps,
            if self.sleep { "on" } else { "off" },
        );
        if let Some(r) = &self.replay {
            out.push_str(&format!(" replay={r}"));
        }
        out
    }

    /// Runs the query to a deterministic JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::Exhausted`] when exploration outgrows
    /// `budget`, [`SchedError::Replay`] on a schedule mismatch, and
    /// [`SchedError::StepLimit`] when one execution exceeds `steps`.
    pub fn run(&self) -> Result<Json, SchedError> {
        self.run_with(CancelToken::NONE, None)
    }

    /// [`SchedSpec::run`] under external control: a serving layer's
    /// cancellation token and/or wall-clock deadline, polled at
    /// schedule boundaries. `run_with(CancelToken::NONE, None)` is
    /// exactly `run` — control signals never change a completed
    /// query's document.
    pub fn run_with(&self, cancel: CancelToken, wall: Option<Wall>) -> Result<Json, SchedError> {
        let fixture = fixtures::find(&self.target).ok_or_else(|| unknown_target(&self.target))?;
        let mut build = fixtures::build(&self.target).expect("found fixtures have builders");
        let common = vec![
            ("query", Json::Str("sched".to_owned())),
            ("target", Json::Str(self.target.to_owned())),
            ("canonical", Json::Str(self.canonical_text())),
        ];
        if let Some(schedule) = &self.replay {
            let rep = replay(schedule, &mut build)?;
            let mut pairs = common;
            pairs.extend([
                ("replay", Json::Str(rep.schedule.to_string())),
                ("steps", Json::U64(rep.steps)),
                ("preemptions", Json::U64(rep.preemptions.into())),
                ("violation", rep.violation.map_or(Json::Null, Json::Str)),
            ]);
            return Ok(Json::obj(pairs));
        }
        let mut budget = Budget::default()
            .with_schedules(self.budget)
            .with_steps(self.steps);
        budget.wall = wall;
        let options = SchedOptions {
            mode: match self.mode {
                SpecMode::Dfs => Mode::Exhaustive {
                    sleep_sets: self.sleep,
                },
                SpecMode::Preempt => Mode::Preemption {
                    max_preemptions: self.preemptions,
                },
                SpecMode::Pct => Mode::Pct {
                    seed: self.seed,
                    runs: self.runs,
                    depth: self.depth,
                },
            },
            budget,
            cancel,
        };
        let found = explore(&options, &mut build)?;
        let violation = found.counterexample.is_some();
        let mut pairs = common;
        pairs.extend([
            ("mode", Json::Str(self.mode.as_str().to_owned())),
            ("schedules", Json::U64(found.schedules)),
            ("pruned", Json::U64(found.pruned)),
            ("max_depth", Json::U64(found.max_depth)),
            ("max_preemptions", Json::U64(found.max_preemptions.into())),
            ("rounds", Json::U64(found.rounds.into())),
            ("complete", Json::Bool(found.complete)),
            (
                "verdict",
                Json::Str(if violation { "violation" } else { "pass" }.to_owned()),
            ),
            (
                "counterexample",
                found.counterexample.map_or(Json::Null, |cx| {
                    Json::obj(vec![
                        ("schedule", Json::Str(cx.schedule.to_string())),
                        ("message", Json::Str(cx.message)),
                    ])
                }),
            ),
            ("expect_violation", Json::Bool(fixture.expect_violation)),
            (
                "as_expected",
                Json::Bool(violation == fixture.expect_violation),
            ),
        ]);
        Ok(Json::obj(pairs))
    }
}

fn unknown_target(target: &str) -> SchedError {
    let known: Vec<_> = fixtures::ALL.iter().map(|f| f.name).collect();
    SchedError::Parse(format!(
        "unknown target {target:?}; known targets: {}",
        known.join(", ")
    ))
}

impl FromStr for SchedSpec {
    type Err = SchedError;

    fn from_str(text: &str) -> Result<SchedSpec, SchedError> {
        let mut words = text.split_whitespace();
        let target = words
            .next()
            .ok_or_else(|| SchedError::Parse("empty sched query; expected a target".into()))?;
        if fixtures::find(target).is_none() {
            return Err(unknown_target(target));
        }
        let mut spec = SchedSpec::new(target);
        for word in words {
            let (key, value) = word
                .split_once('=')
                .ok_or_else(|| SchedError::Parse(format!("expected key=value, got {word:?}")))?;
            let bad = |what: &str| SchedError::Parse(format!("{key}={value:?} is not {what}"));
            match key {
                "mode" => {
                    spec.mode = match value {
                        "dfs" => SpecMode::Dfs,
                        "preempt" => SpecMode::Preempt,
                        "pct" => SpecMode::Pct,
                        _ => return Err(bad("dfs, preempt or pct")),
                    }
                }
                "seed" => spec.seed = value.parse().map_err(|_| bad("a number"))?,
                "runs" => spec.runs = value.parse().map_err(|_| bad("a number"))?,
                "depth" => spec.depth = value.parse().map_err(|_| bad("a number"))?,
                "preemptions" => spec.preemptions = value.parse().map_err(|_| bad("a number"))?,
                "budget" => spec.budget = value.parse().map_err(|_| bad("a number"))?,
                "steps" => spec.steps = value.parse().map_err(|_| bad("a number"))?,
                "sleep" => {
                    spec.sleep = match value {
                        "on" => true,
                        "off" => false,
                        _ => return Err(bad("on or off")),
                    }
                }
                "replay" => {
                    spec.replay = Some(
                        value
                            .parse::<Schedule>()
                            .map_err(|e| SchedError::Parse(e.to_string()))?,
                    )
                }
                _ => {
                    return Err(SchedError::Parse(format!(
                        "unknown key {key:?}; expected mode, seed, runs, depth, preemptions, \
                         budget, steps, sleep or replay"
                    )))
                }
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_resolve_into_canonical_text() {
        let spec: SchedSpec = "srsw".parse().unwrap();
        assert_eq!(
            spec.canonical_text(),
            "srsw mode=dfs seed=1 runs=64 depth=3 preemptions=2 budget=200000 steps=10000 sleep=on"
        );
    }

    #[test]
    fn overrides_and_replay_round_trip() {
        let spec: SchedSpec = "broken mode=pct seed=7 runs=9 replay=0101".parse().unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.runs, 9);
        assert_eq!(spec.replay.as_ref().unwrap().to_string(), "0101");
        let again: SchedSpec = spec.canonical_text().parse().unwrap();
        assert_eq!(again, spec);
    }

    #[test]
    fn rejects_unknown_targets_and_keys() {
        assert!(matches!(
            "nonesuch".parse::<SchedSpec>(),
            Err(SchedError::Parse(_))
        ));
        assert!(matches!(
            "srsw zoom=3".parse::<SchedSpec>(),
            Err(SchedError::Parse(_))
        ));
    }
}
