//! Acceptance tests for the `wfc-waitfree` fixture family: each
//! primitive's real algorithm passes exhaustive DFS completely, and
//! each planted-bug twin is caught with a schedule that replays to the
//! identical violation, deterministically.

use wfc_sched::{explore, fixtures, replay, Mode, SchedOptions};

fn exhaustive() -> SchedOptions {
    SchedOptions::default().with_mode(Mode::Exhaustive { sleep_sets: true })
}

/// The three real primitives: every interleaving enumerated, none
/// violating — the fixture-before-hot-path gate for the span, pool,
/// and service refactors that use them.
#[test]
fn waitfree_primitives_pass_exhaustively() {
    for name in ["ring", "triple", "cell"] {
        let mut build = fixtures::build(name).unwrap();
        let found = explore(&exhaustive(), &mut build).unwrap();
        assert!(found.complete, "{name}: exhaustive DFS must cover the tree");
        assert!(
            found.counterexample.is_none(),
            "{name}: unexpected violation: {:?}",
            found.counterexample
        );
        assert!(found.schedules > 0, "{name}: explored nothing");
    }
}

/// The three planted-bug twins: each reordered publication is found,
/// and its schedule replays — twice — to the same violation message the
/// search reported. The expected message fragments are the ones the CI
/// smoke job greps for.
#[test]
fn waitfree_planted_bugs_are_caught_and_replayable() {
    let cases = [
        (
            "ring_broken",
            "tail index was published before the slot write",
        ),
        ("triple_broken", "snapshot changed underfoot"),
        ("cell_broken", "FULL state was published before the payload"),
    ];
    for (name, expected) in cases {
        let mut build = fixtures::build(name).unwrap();
        let found = explore(&exhaustive(), &mut build).unwrap();
        let cx = found
            .counterexample
            .unwrap_or_else(|| panic!("{name}: planted bug not found"));
        assert!(
            cx.message.contains(expected),
            "{name}: message {:?} lacks {expected:?}",
            cx.message
        );
        assert!(!cx.schedule.is_empty(), "{name}: empty schedule");

        let once = replay(&cx.schedule, &mut build).unwrap();
        let twice = replay(&cx.schedule, &mut build).unwrap();
        assert_eq!(once, twice, "{name}: replay must be deterministic");
        assert_eq!(
            once.violation.as_deref(),
            Some(cx.message.as_str()),
            "{name}: replay must reproduce the search's violation"
        );
    }
}
