//! Acceptance tests for the model checker: exhaustive coverage of the
//! SRSW conversation, the planted-bug fixture, replay determinism, and
//! typed budget errors.

use wfc_sched::{explore, fixtures, replay, Mode, SchedError, SchedOptions, SchedSpec};

fn exhaustive(sleep_sets: bool) -> SchedOptions {
    SchedOptions::default().with_mode(Mode::Exhaustive { sleep_sets })
}

/// The headline acceptance check: exhaustive mode on the 1-write/2-read
/// SRSW conversation enumerates every schedule and proves the seqlock
/// register never exhibits the new/old inversion `(1, 0)`.
#[test]
fn srsw_exhaustive_is_complete_and_inversion_free() {
    let mut build = fixtures::build("srsw").unwrap();
    let found = explore(&exhaustive(true), &mut build).unwrap();
    assert!(found.complete, "exhaustive mode must cover the tree");
    assert!(
        found.counterexample.is_none(),
        "the atomic SRSW register must not show the (1, 0) inversion: {:?}",
        found.counterexample
    );
    assert!(found.schedules > 0 && found.pruned > 0);
}

/// Sleep sets are a pruning, not an approximation: with and without
/// them, exhaustive DFS reaches the same verdict, and turning them off
/// only enlarges the schedule count.
#[test]
fn sleep_sets_change_cost_not_verdict() {
    let mut build = fixtures::build("srsw").unwrap();
    let with = explore(&exhaustive(true), &mut build).unwrap();
    let without = explore(&exhaustive(false), &mut build).unwrap();
    assert!(with.complete && without.complete);
    assert!(with.counterexample.is_none() && without.counterexample.is_none());
    assert!(
        without.schedules > with.schedules,
        "pruning must help: {} !> {}",
        without.schedules,
        with.schedules
    );
    assert_eq!(without.pruned, 0);
}

/// Sleep sets agree with plain DFS on a fixture that *does* violate.
#[test]
fn sleep_sets_preserve_violations() {
    let mut build = fixtures::build("regular").unwrap();
    for sleep in [true, false] {
        let found = explore(&exhaustive(sleep), &mut build).unwrap();
        let cx = found
            .counterexample
            .unwrap_or_else(|| panic!("regular-vs-atomic violation missed (sleep={sleep})"));
        assert!(cx.message.contains("not linearizable"), "{}", cx.message);
    }
}

/// Regression for a sleep-set soundness bug: a deferred sibling branch
/// used to inherit sleepers *dependent* on the sibling's own access, so
/// subtrees that were never covered got pruned as if they were. The
/// `triple_broken` fixture is the witness — its violation needs the
/// writer to run again right after the reader's swap, which is exactly
/// the continuation the stale sleep entry suppressed. With the wake
/// rule applied at branch time, pruning and plain DFS agree on every
/// `wfc-waitfree` fixture.
#[test]
fn sleep_sets_wake_dependent_sleepers_in_sibling_branches() {
    for fixture in fixtures::ALL {
        if !matches!(
            fixture.name,
            "ring" | "ring_broken" | "triple" | "triple_broken" | "cell" | "cell_broken"
        ) {
            continue;
        }
        let mut build = fixtures::build(fixture.name).unwrap();
        let with = explore(&exhaustive(true), &mut build).unwrap();
        let without = explore(&exhaustive(false), &mut build).unwrap();
        assert_eq!(
            with.counterexample.is_some(),
            fixture.expect_violation,
            "{} with sleep sets",
            fixture.name
        );
        assert_eq!(
            without.counterexample.is_some(),
            fixture.expect_violation,
            "{} without sleep sets",
            fixture.name
        );
    }
}

/// The planted bug is found, and its schedule replays to the same
/// violation, byte for byte, twice.
#[test]
fn broken_fixture_is_caught_with_a_replayable_schedule() {
    let mut build = fixtures::build("broken").unwrap();
    let found = explore(&exhaustive(true), &mut build).unwrap();
    let cx = found.counterexample.expect("planted bug found");
    assert!(cx.message.contains("torn read"), "{}", cx.message);
    assert!(!cx.schedule.is_empty());

    let once = replay(&cx.schedule, &mut build).unwrap();
    let twice = replay(&cx.schedule, &mut build).unwrap();
    assert_eq!(once, twice, "replay must be deterministic");
    assert_eq!(once.schedule, cx.schedule);
    assert_eq!(once.violation.as_deref(), Some(cx.message.as_str()));
}

/// All three modes agree on both a passing and a failing fixture.
#[test]
fn verdicts_agree_across_modes_and_seeds() {
    for (target, expect_violation) in [("t4", false), ("broken", true)] {
        let mut build = fixtures::build(target).unwrap();
        let dfs = explore(&exhaustive(true), &mut build).unwrap();
        let preempt = explore(
            &SchedOptions::default().with_mode(Mode::Preemption { max_preemptions: 4 }),
            &mut build,
        )
        .unwrap();
        assert_eq!(dfs.counterexample.is_some(), expect_violation, "{target}");
        assert_eq!(
            preempt.counterexample.is_some(),
            expect_violation,
            "{target}"
        );
        for seed in [1, 2, 42] {
            let pct = explore(
                &SchedOptions::default().with_mode(Mode::Pct {
                    seed,
                    runs: 200,
                    depth: 3,
                }),
                &mut build,
            )
            .unwrap();
            // PCT is probabilistic: it must never report a false
            // violation, and on these tiny fixtures 200 runs reliably
            // find the planted bug.
            assert_eq!(
                pct.counterexample.is_some(),
                expect_violation,
                "{target} seed {seed}"
            );
        }
    }
}

/// The Section 4.3 bounded bit passes exhaustively: its reader's row
/// counter is monotone, so no column walk can observe an inversion.
#[test]
fn t4_array_passes_exhaustively() {
    let mut build = fixtures::build("t4").unwrap();
    let found = explore(&exhaustive(true), &mut build).unwrap();
    assert!(found.complete);
    assert!(found.counterexample.is_none(), "{:?}", found.counterexample);
}

/// The seqlock fixture passes under bounded preemption: every schedule
/// with at most 2 preemptions is clean. (Completeness is not expected —
/// the bound is the point of this mode; the tiny fixtures reach
/// completeness through exhaustive DFS instead.)
#[test]
fn seqlock_passes_under_preemption_bounding() {
    let mut build = fixtures::build("seqlock").unwrap();
    let found = explore(
        &SchedOptions::default().with_mode(Mode::Preemption { max_preemptions: 2 }),
        &mut build,
    )
    .unwrap();
    assert!(found.counterexample.is_none(), "{:?}", found.counterexample);
    assert_eq!(found.rounds, 3, "bounds 0, 1, 2");
    assert!(found.schedules > 3, "each round explores its bound");
}

/// The MRSW atomic register passes a seeded PCT sweep.
#[test]
fn mrsw_passes_pct() {
    let mut build = fixtures::build("mrsw").unwrap();
    let found = explore(
        &SchedOptions::default().with_mode(Mode::Pct {
            seed: 3,
            runs: 100,
            depth: 3,
        }),
        &mut build,
    )
    .unwrap();
    assert!(found.counterexample.is_none(), "{:?}", found.counterexample);
    assert_eq!(found.rounds, 100);
}

/// Budget overflow is a typed error carrying the used/budget pair — the
/// same `control::Exhausted` the explorer raises, with a `Progress`
/// snapshot counting the schedules actually executed.
#[test]
fn budget_overflow_is_a_typed_error() {
    let mut build = fixtures::build("srsw").unwrap();
    let err = explore(
        &SchedOptions::default()
            .with_mode(Mode::Exhaustive { sleep_sets: false })
            .with_max_schedules(5),
        &mut build,
    )
    .unwrap_err();
    match err {
        SchedError::Exhausted(e) => {
            assert_eq!(e.resource, wfc_spec::control::Resource::Schedules);
            assert_eq!(e.budget, 5);
            assert_eq!(e.used, 5);
            assert_eq!(e.progress.schedules, 5);
            assert!(e.progress.steps > 0, "executed schedules took steps");
        }
        other => panic!("expected Exhausted, got {other:?}"),
    }
}

/// A schedule that diverges from the scenario is a typed replay error,
/// not a bogus verdict.
#[test]
fn replay_rejects_mismatched_schedules() {
    let mut build = fixtures::build("srsw").unwrap();
    let err = replay(&"z".parse().unwrap(), &mut build).unwrap_err();
    assert!(matches!(err, SchedError::Replay(_)), "{err:?}");
    let err = replay(&"0".parse().unwrap(), &mut build).unwrap_err();
    assert!(matches!(err, SchedError::Replay(_)), "{err:?}");
}

/// The query layer renders deterministic JSON: running the same spec
/// twice gives byte-identical documents, and the counterexample's
/// schedule replays through the same layer.
#[test]
fn query_documents_are_deterministic_and_replayable() {
    let spec: SchedSpec = "broken mode=dfs".parse().unwrap();
    let a = spec.run().unwrap().render();
    let b = spec.run().unwrap().render();
    assert_eq!(a, b);
    assert!(a.contains("\"verdict\":\"violation\""), "{a}");
    assert!(a.contains("\"as_expected\":true"), "{a}");

    // Extract the schedule and replay it via the query grammar.
    let doc = spec.run().unwrap();
    let schedule = doc
        .get("counterexample")
        .and_then(|cx| cx.get("schedule"))
        .and_then(|s| match s {
            wfc_obs::json::Json::Str(s) => Some(s.clone()),
            _ => None,
        })
        .expect("counterexample schedule");
    let replay_spec: SchedSpec = format!("broken replay={schedule}").parse().unwrap();
    let r1 = replay_spec.run().unwrap().render();
    let r2 = replay_spec.run().unwrap().render();
    assert_eq!(r1, r2);
    assert!(r1.contains("torn read"), "{r1}");
}
