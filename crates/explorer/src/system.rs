//! Systems: shared objects plus one program per process (paper,
//! Section 2.2).
//!
//! A [`System`] is an *implementation* in the paper's sense: a set of
//! appropriately-initialised objects together with a deterministic program
//! for each process. A [`Config`] is a node of the paper's execution trees
//! (Section 4.2): the states of the implementing objects and the "program
//! counters" of the processes.

use std::sync::Arc;

use wfc_spec::{FiniteType, InvId, PortId, StateId};

use crate::error::ExplorerError;
use crate::program::{local_run, Instr, ProcState, Program};

/// A shared object instance: its type, initial state, and the port through
/// which each process accesses it.
#[derive(Clone, Debug)]
pub struct ObjectInstance {
    ty: Arc<FiniteType>,
    init: StateId,
    /// `port_of[p]` is the port assigned to process `p`, if any.
    port_of: Vec<Option<PortId>>,
}

impl ObjectInstance {
    /// Creates an instance of `ty` initialised to `init`, with
    /// `port_of[p]` the port of process `p` (use `None` for processes that
    /// never access the object).
    ///
    /// # Panics
    ///
    /// Panics if `init` or any port is out of range for the type, or if two
    /// processes share a port (the paper: "at most one process may use a
    /// port").
    pub fn new(ty: Arc<FiniteType>, init: StateId, port_of: Vec<Option<PortId>>) -> Self {
        assert!(
            init.index() < ty.state_count(),
            "initial state out of range"
        );
        let mut used = vec![false; ty.ports()];
        for port in port_of.iter().flatten() {
            assert!(port.index() < ty.ports(), "port out of range");
            assert!(!used[port.index()], "two processes share a port");
            used[port.index()] = true;
        }
        ObjectInstance { ty, init, port_of }
    }

    /// Convenience: an instance where process `p` uses port `p` directly.
    /// Requires `ty.ports() >= processes`.
    pub fn identity_ports(ty: Arc<FiniteType>, init: StateId, processes: usize) -> Self {
        assert!(ty.ports() >= processes, "type has too few ports");
        let ports = (0..processes).map(|p| Some(PortId::new(p))).collect();
        ObjectInstance::new(ty, init, ports)
    }

    /// The object's type.
    pub fn ty(&self) -> &Arc<FiniteType> {
        &self.ty
    }

    /// The initial state.
    pub fn init(&self) -> StateId {
        self.init
    }

    /// The port assigned to process `p`, if any.
    pub fn port_of(&self, p: usize) -> Option<PortId> {
        self.port_of.get(p).copied().flatten()
    }
}

/// An implementation: objects plus one program per process.
#[derive(Clone, Debug)]
pub struct System {
    objects: Vec<ObjectInstance>,
    programs: Vec<Program>,
}

impl System {
    /// Creates a system from objects and per-process programs.
    pub fn new(objects: Vec<ObjectInstance>, programs: Vec<Program>) -> Self {
        System { objects, programs }
    }

    /// The shared objects.
    pub fn objects(&self) -> &[ObjectInstance] {
        &self.objects
    }

    /// The per-process programs.
    pub fn programs(&self) -> &[Program] {
        &self.programs
    }

    /// The number of processes.
    pub fn processes(&self) -> usize {
        self.programs.len()
    }

    /// The initial configuration: object initial states and each process's
    /// state after running its local prefix (up to its first invoke or
    /// decision).
    ///
    /// # Errors
    ///
    /// Returns an error if a local prefix diverges or is malformed.
    pub fn initial_config(&self) -> Result<Config, ExplorerError> {
        let mut procs = Vec::with_capacity(self.programs.len());
        for (p, program) in self.programs.iter().enumerate() {
            let mut st = ProcState::initial(program);
            local_run(program, &mut st)
                .map_err(|source| ExplorerError::Program { process: p, source })?;
            procs.push(st);
        }
        Ok(Config {
            objects: self.objects.iter().map(|o| o.init()).collect(),
            procs,
        })
    }

    /// The pending shared access of process `p` in `config`, or `None` if
    /// the process has decided.
    ///
    /// # Errors
    ///
    /// Returns an error if the pending invocation is malformed (bad object
    /// index, bad invocation, missing port).
    pub fn pending_access(
        &self,
        config: &Config,
        p: usize,
    ) -> Result<Option<Access>, ExplorerError> {
        let st = &config.procs[p];
        if st.decided.is_some() {
            return Ok(None);
        }
        let program = &self.programs[p];
        let Some(&Instr::Invoke { obj, inv, store: _ }) = program.code().get(st.pc) else {
            // local_run guarantees pc addresses an Invoke for undecided
            // processes; anything else is a malformed program.
            return Err(ExplorerError::Program {
                process: p,
                source: crate::error::ProgramError::PcOutOfRange { pc: st.pc },
            });
        };
        let obj_ix = st.eval(obj);
        let obj_usize: usize = obj_ix
            .try_into()
            .ok()
            .filter(|&o: &usize| o < self.objects.len())
            .ok_or(ExplorerError::NoSuchObject {
                process: p,
                obj: obj_ix,
            })?;
        let object = &self.objects[obj_usize];
        let inv_ix = st.eval(inv);
        let inv_id: usize = inv_ix
            .try_into()
            .ok()
            .filter(|&i: &usize| i < object.ty().invocation_count())
            .ok_or(ExplorerError::NoSuchInvocation {
                process: p,
                obj: obj_usize,
                inv: inv_ix,
            })?;
        let port = object.port_of(p).ok_or(ExplorerError::NoPortAssigned {
            process: p,
            obj: obj_usize,
        })?;
        Ok(Some(Access {
            process: p,
            obj: obj_usize,
            inv: InvId::new(inv_id),
            port,
        }))
    }

    /// Applies one step of process `p` in `config`: performs its pending
    /// access with each possible outcome of the (possibly nondeterministic)
    /// object and runs the process's local continuation. Returns the
    /// successor configurations — one per outcome.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed accesses or divergent continuations;
    /// returns `Ok(vec![])` if the process has already decided.
    pub fn step(&self, config: &Config, p: usize) -> Result<Vec<Config>, ExplorerError> {
        let Some(access) = self.pending_access(config, p)? else {
            return Ok(Vec::new());
        };
        let object = &self.objects[access.obj];
        let program = &self.programs[p];
        let store = match program.code()[config.procs[p].pc] {
            Instr::Invoke { store, .. } => store,
            _ => unreachable!("pending_access verified the instruction"),
        };
        let state = config.objects[access.obj];
        let outcomes = object.ty().outcomes(state, access.port, access.inv);
        let mut result = Vec::with_capacity(outcomes.len());
        for out in outcomes {
            let mut next = config.clone();
            next.objects[access.obj] = out.next;
            let st = &mut next.procs[p];
            if let Some(var) = store {
                st.vars[var.0] = out.resp.index() as i64;
            }
            st.pc += 1;
            local_run(program, st)
                .map_err(|source| ExplorerError::Program { process: p, source })?;
            result.push(next);
        }
        Ok(result)
    }
}

/// A pending shared access: which process invokes what on which object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Access {
    /// The invoking process.
    pub process: usize,
    /// The object index.
    pub obj: usize,
    /// The invocation.
    pub inv: InvId,
    /// The port used.
    pub port: PortId,
}

/// A configuration: object states plus process states — one node of the
/// paper's execution trees (Section 4.2).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Config {
    /// Current state of each object.
    pub objects: Vec<StateId>,
    /// Current state of each process.
    pub procs: Vec<ProcState>,
}

impl Config {
    /// `true` once every process has decided: a leaf of the execution tree.
    pub fn is_terminal(&self) -> bool {
        self.procs.iter().all(|p| p.decided.is_some())
    }

    /// The decision vector at a terminal configuration.
    ///
    /// # Panics
    ///
    /// Panics if some process has not decided.
    pub fn decisions(&self) -> Vec<i64> {
        self.procs
            .iter()
            .map(|p| p.decided.expect("terminal configuration"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Operand, ProgramBuilder};
    use wfc_spec::canonical;

    fn tas_system() -> System {
        let tas = Arc::new(canonical::test_and_set(2));
        let init = tas.state_id("unset").unwrap();
        let tas_inv = tas.invocation_id("test_and_set").unwrap();
        let obj = ObjectInstance::identity_ports(tas, init, 2);
        let program = {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            b.invoke(0_i64, Operand::Const(tas_inv.index() as i64), Some(r));
            b.ret(r);
            b.build().unwrap()
        };
        System::new(vec![obj], vec![program.clone(), program])
    }

    #[test]
    fn initial_config_pauses_at_invoke() {
        let sys = tas_system();
        let c = sys.initial_config().unwrap();
        assert!(!c.is_terminal());
        assert_eq!(c.procs[0].pc, 0);
        let a = sys.pending_access(&c, 0).unwrap().unwrap();
        assert_eq!(a.obj, 0);
        assert_eq!(a.port, PortId::new(0));
    }

    #[test]
    fn stepping_decides_first_wins() {
        let sys = tas_system();
        let c0 = sys.initial_config().unwrap();
        let c1 = sys.step(&c0, 0).unwrap().pop().unwrap();
        assert_eq!(c1.procs[0].decided, Some(0), "winner sees old value 0");
        let c2 = sys.step(&c1, 1).unwrap().pop().unwrap();
        assert_eq!(c2.procs[1].decided, Some(1), "loser sees 1");
        assert!(c2.is_terminal());
        assert_eq!(c2.decisions(), vec![0, 1]);
    }

    #[test]
    fn decided_process_has_no_steps() {
        let sys = tas_system();
        let c0 = sys.initial_config().unwrap();
        let c1 = sys.step(&c0, 0).unwrap().pop().unwrap();
        assert!(sys.step(&c1, 0).unwrap().is_empty());
    }

    #[test]
    fn bad_object_index_is_reported() {
        let tas = Arc::new(canonical::test_and_set(2));
        let init = tas.state_id("unset").unwrap();
        let obj = ObjectInstance::identity_ports(tas, init, 1);
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        b.invoke(9_i64, 0_i64, Some(r));
        b.ret(r);
        let sys = System::new(vec![obj], vec![b.build().unwrap()]);
        let c = sys.initial_config().unwrap();
        assert!(matches!(
            sys.pending_access(&c, 0),
            Err(ExplorerError::NoSuchObject { process: 0, obj: 9 })
        ));
    }

    #[test]
    fn missing_port_is_reported() {
        let tas = Arc::new(canonical::test_and_set(2));
        let init = tas.state_id("unset").unwrap();
        // Process 0 has no port on the object.
        let obj = ObjectInstance::new(tas, init, vec![None]);
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        b.invoke(0_i64, 0_i64, Some(r));
        b.ret(r);
        let sys = System::new(vec![obj], vec![b.build().unwrap()]);
        let c = sys.initial_config().unwrap();
        assert!(matches!(
            sys.pending_access(&c, 0),
            Err(ExplorerError::NoPortAssigned { process: 0, obj: 0 })
        ));
    }

    #[test]
    #[should_panic(expected = "share a port")]
    fn shared_ports_are_rejected() {
        let tas = Arc::new(canonical::test_and_set(2));
        let init = tas.state_id("unset").unwrap();
        let _ = ObjectInstance::new(tas, init, vec![Some(PortId::new(0)), Some(PortId::new(0))]);
    }

    #[test]
    fn nondeterministic_objects_branch() {
        let oub = Arc::new(canonical::one_use_bit());
        let dead = oub.state_id("DEAD").unwrap();
        let read = oub.invocation_id("read").unwrap();
        let obj = ObjectInstance::identity_ports(oub, dead, 1);
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        b.invoke(0_i64, Operand::Const(read.index() as i64), Some(r));
        b.ret(r);
        let sys = System::new(vec![obj], vec![b.build().unwrap()]);
        let c = sys.initial_config().unwrap();
        let kids = sys.step(&c, 0).unwrap();
        assert_eq!(kids.len(), 2, "DEAD read may return 0 or 1");
    }
}
