//! Linearizability checking (Herlihy–Wing \[8\]).
//!
//! An implementation is *correct* if all of its concurrent histories are
//! linearizable with respect to the implemented type's sequential
//! specification (paper, Section 2.2). This module provides a Wing–Gong
//! style checker over [`ConcurrentHistory`] records and a whole-system
//! checker, [`check_one_shot_implementation`], that enumerates every
//! schedule of a [`System`] implementing one operation per process and
//! verifies that each resulting history linearizes.

use std::collections::HashSet;

use wfc_spec::{FiniteType, InvId, PortId, RespId, StateId};

use crate::error::ExplorerError;
use crate::system::{Config, System};

/// One completed high-level operation in a concurrent history.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OpRecord {
    /// The port of the *implemented* object used by this operation.
    pub port: PortId,
    /// The invocation performed.
    pub inv: InvId,
    /// The response returned.
    pub resp: RespId,
    /// Logical time at which the operation was invoked.
    pub invoked_at: i64,
    /// Logical time at which the operation responded; must be
    /// `>= invoked_at`.
    pub responded_at: i64,
}

impl OpRecord {
    /// `true` if `self` completed strictly before `other` was invoked —
    /// the real-time precedence a linearization must respect.
    pub fn precedes(&self, other: &OpRecord) -> bool {
        self.responded_at < other.invoked_at
    }
}

/// A concurrent history of completed operations on one object.
#[derive(Clone, Debug, Default)]
pub struct ConcurrentHistory {
    ops: Vec<OpRecord>,
}

impl ConcurrentHistory {
    /// Creates a history from completed operation records.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 operations are supplied (the checker uses a
    /// bitmask) or if some operation responds before it is invoked.
    pub fn new(ops: Vec<OpRecord>) -> Self {
        assert!(ops.len() <= 64, "checker supports at most 64 operations");
        assert!(
            ops.iter().all(|o| o.invoked_at <= o.responded_at),
            "operation responds before invocation"
        );
        ConcurrentHistory { ops }
    }

    /// The operation records.
    pub fn ops(&self) -> &[OpRecord] {
        &self.ops
    }
}

/// Checks whether `history` is linearizable with respect to `ty` starting
/// from `init`.
///
/// The search explores all orderings consistent with real-time precedence,
/// memoising on (linearized-set, object-state) pairs; worst case
/// `O(2^k · |Q|)` for `k` operations. Nondeterministic types are supported:
/// an operation can be linearized via any outcome matching its response.
pub fn is_linearizable(ty: &FiniteType, init: StateId, history: &ConcurrentHistory) -> bool {
    let ops = history.ops();
    let full: u64 = if ops.len() == 64 {
        u64::MAX
    } else {
        (1u64 << ops.len()) - 1
    };
    let mut visited: HashSet<(u64, StateId)> = HashSet::new();
    let mut stack: Vec<(u64, StateId)> = vec![(0, init)];
    while let Some((done, state)) = stack.pop() {
        if done == full {
            return true;
        }
        if !visited.insert((done, state)) {
            continue;
        }
        for (k, op) in ops.iter().enumerate() {
            if done & (1 << k) != 0 {
                continue;
            }
            // `op` may be linearized next only if no other pending
            // operation completed before `op` was invoked.
            let blocked = ops
                .iter()
                .enumerate()
                .any(|(j, other)| j != k && done & (1 << j) == 0 && other.precedes(op));
            if blocked {
                continue;
            }
            for out in ty.outcomes(state, op.port, op.inv) {
                if out.resp == op.resp {
                    stack.push((done | (1 << k), out.next));
                }
            }
        }
    }
    false
}

/// Description of the high-level operation a process performs against the
/// implemented object, for [`check_one_shot_implementation`].
#[derive(Clone, Copy, Debug)]
pub struct OpLabel {
    /// The port of the implemented object the process holds.
    pub port: PortId,
    /// The invocation of the implemented type the process's program
    /// implements.
    pub inv: InvId,
}

/// The verdict of [`check_one_shot_implementation`].
#[derive(Clone, Debug)]
pub struct ImplementationCheck {
    /// Number of complete schedules (paths) examined.
    pub paths: usize,
    /// Histories that failed to linearize, as (schedule, history) pairs.
    pub counterexamples: Vec<(Vec<usize>, ConcurrentHistory)>,
}

impl ImplementationCheck {
    /// `true` if every schedule produced a linearizable history.
    pub fn holds(&self) -> bool {
        self.counterexamples.is_empty()
    }
}

/// Collects the high-level concurrent history of **every** schedule of a
/// one-shot implementation system: each process runs a program
/// implementing one operation (described by `labels`) and decides that
/// operation's response index.
///
/// This is the raw material for consistency checking under conditions
/// other than linearizability — e.g. the *regularity* of Lamport's
/// multi-reader bit (Section 4.1), which tolerates new/old inversion.
///
/// # Errors
///
/// Returns an error on malformed programs or when more than `max_paths`
/// schedules exist.
pub fn collect_histories(
    system: &System,
    labels: &[OpLabel],
    max_paths: usize,
) -> Result<Vec<(Vec<usize>, ConcurrentHistory)>, ExplorerError> {
    assert_eq!(
        labels.len(),
        system.processes(),
        "one label per process required"
    );
    let mut out = Vec::new();
    let init = system.initial_config()?;
    let mut stack: Vec<(Config, Vec<usize>)> = vec![(init, Vec::new())];
    while let Some((cfg, schedule)) = stack.pop() {
        if cfg.is_terminal() {
            let used = out.len() as u64 + 1;
            let budget = wfc_spec::control::Budget::default().with_configs(max_paths as u64);
            if let Some(e) = budget.configs_exceeded(
                used,
                wfc_spec::control::Progress {
                    configs: used,
                    ..Default::default()
                },
            ) {
                return Err(ExplorerError::Exhausted(e));
            }
            let history = history_of(system, &cfg, &schedule, labels);
            out.push((schedule, history));
            continue;
        }
        for p in 0..system.processes() {
            for child in system.step(&cfg, p)? {
                let mut s = schedule.clone();
                s.push(p);
                stack.push((child, s));
            }
        }
    }
    Ok(out)
}

/// Verifies that `system` — in which each process runs a program
/// implementing *one* operation of `target` and decides that operation's
/// response index — is a correct one-shot implementation: for **every**
/// schedule, the resulting concurrent history linearizes against `target`
/// from `target_init`.
///
/// The operation of process `p` is described by `labels[p]`; its decision
/// value is interpreted as a [`RespId`] index of `target`. A process's
/// operation is considered invoked at its first shared step and responded
/// at its last (processes that decide without shared steps occupy the
/// instant before the schedule starts).
///
/// Unlike [`crate::explore::explore`], this walks the execution *tree*
/// path by path, because a history depends on the entire schedule, not
/// just the final configuration. `max_paths` bounds the walk.
///
/// # Errors
///
/// Returns an error on malformed programs or if more than `max_paths`
/// schedules exist.
pub fn check_one_shot_implementation(
    system: &System,
    target: &FiniteType,
    target_init: StateId,
    labels: &[OpLabel],
    max_paths: usize,
) -> Result<ImplementationCheck, ExplorerError> {
    let histories = collect_histories(system, labels, max_paths)?;
    let paths = histories.len();
    let counterexamples = histories
        .into_iter()
        .filter(|(_, h)| !is_linearizable(target, target_init, h))
        .collect();
    Ok(ImplementationCheck {
        paths,
        counterexamples,
    })
}

/// Builds the high-level concurrent history induced by `schedule`.
fn history_of(
    system: &System,
    terminal: &Config,
    schedule: &[usize],
    labels: &[OpLabel],
) -> ConcurrentHistory {
    let mut ops = Vec::with_capacity(system.processes());
    for (p, label) in labels.iter().enumerate() {
        let first = schedule.iter().position(|&s| s == p);
        let last = schedule.iter().rposition(|&s| s == p);
        let (invoked_at, responded_at) = match (first, last) {
            (Some(f), Some(l)) => (f as i64, l as i64),
            // Decided during the local prefix: before every step.
            _ => (-1, -1),
        };
        let resp = RespId::new(
            usize::try_from(terminal.procs[p].decided.expect("terminal config"))
                .expect("decision is a response index"),
        );
        ops.push(OpRecord {
            port: label.port,
            inv: label.inv,
            resp,
            invoked_at,
            responded_at,
        });
    }
    ConcurrentHistory::new(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Operand, ProgramBuilder};
    use crate::system::ObjectInstance;
    use std::sync::Arc;
    use wfc_spec::canonical;

    fn reg_ty() -> FiniteType {
        canonical::boolean_register(2)
    }

    fn op(port: usize, inv: &str, resp: &str, at: (i64, i64), ty: &FiniteType) -> OpRecord {
        OpRecord {
            port: PortId::new(port),
            inv: ty.invocation_id(inv).unwrap(),
            resp: ty.response_id(resp).unwrap(),
            invoked_at: at.0,
            responded_at: at.1,
        }
    }

    #[test]
    fn sequential_history_linearizes() {
        let ty = reg_ty();
        let init = ty.state_id("v0").unwrap();
        let h = ConcurrentHistory::new(vec![
            op(0, "write1", "ok", (0, 1), &ty),
            op(1, "read", "1", (2, 3), &ty),
        ]);
        assert!(is_linearizable(&ty, init, &h));
    }

    #[test]
    fn stale_read_after_write_is_rejected() {
        let ty = reg_ty();
        let init = ty.state_id("v0").unwrap();
        // Write of 1 completes before the read is invoked, yet the read
        // returns 0: not linearizable.
        let h = ConcurrentHistory::new(vec![
            op(0, "write1", "ok", (0, 1), &ty),
            op(1, "read", "0", (2, 3), &ty),
        ]);
        assert!(!is_linearizable(&ty, init, &h));
    }

    #[test]
    fn overlapping_read_may_return_either_value() {
        let ty = reg_ty();
        let init = ty.state_id("v0").unwrap();
        for resp in ["0", "1"] {
            let h = ConcurrentHistory::new(vec![
                op(0, "write1", "ok", (0, 3), &ty),
                op(1, "read", resp, (1, 2), &ty),
            ]);
            assert!(is_linearizable(&ty, init, &h), "read of {resp}");
        }
    }

    #[test]
    fn one_use_bit_dead_read_allows_anything() {
        let ty = canonical::one_use_bit();
        let init = ty.state_id("UNSET").unwrap();
        // Two sequential reads; the second is a DEAD read and may return 1.
        let h = ConcurrentHistory::new(vec![
            op(0, "read", "0", (0, 1), &ty),
            op(0, "read", "1", (2, 3), &ty),
        ]);
        assert!(is_linearizable(&ty, init, &h));
    }

    #[test]
    fn empty_history_is_linearizable() {
        let ty = reg_ty();
        let init = ty.state_id("v0").unwrap();
        assert!(is_linearizable(&ty, init, &ConcurrentHistory::default()));
    }

    /// The identity implementation (each process invokes the target object
    /// directly) is trivially correct.
    #[test]
    fn identity_implementation_linearizes() {
        let reg = Arc::new(reg_ty());
        let init = reg.state_id("v0").unwrap();
        let read = reg.invocation_id("read").unwrap();
        let write1 = reg.invocation_id("write1").unwrap();
        let obj = ObjectInstance::identity_ports(reg.clone(), init, 2);
        let writer = {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            b.invoke(0_i64, Operand::Const(write1.index() as i64), Some(r));
            b.ret(r);
            b.build().unwrap()
        };
        let reader = {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            b.invoke(0_i64, Operand::Const(read.index() as i64), Some(r));
            b.ret(r);
            b.build().unwrap()
        };
        let sys = System::new(vec![obj], vec![writer, reader]);
        let labels = [
            OpLabel {
                port: PortId::new(0),
                inv: write1,
            },
            OpLabel {
                port: PortId::new(1),
                inv: read,
            },
        ];
        let check = check_one_shot_implementation(&sys, &reg, init, &labels, 10_000).unwrap();
        assert!(check.holds(), "{:?}", check.counterexamples);
        assert_eq!(check.paths, 2, "two interleavings of two single steps");
    }

    /// A bogus implementation (reader always answers 0) is caught.
    #[test]
    fn constant_reader_fails_linearizability() {
        let reg = Arc::new(reg_ty());
        let init = reg.state_id("v0").unwrap();
        let read = reg.invocation_id("read").unwrap();
        let write1 = reg.invocation_id("write1").unwrap();
        let ok = reg.response_id("ok").unwrap();
        let r0 = reg.response_id("0").unwrap();
        let obj = ObjectInstance::identity_ports(reg.clone(), init, 2);
        let writer = {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            b.invoke(0_i64, Operand::Const(write1.index() as i64), Some(r));
            b.ret(ok.index() as i64);
            b.build().unwrap()
        };
        let bogus_reader = {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            // Perform a real write-0 probe? No: just touch the object and
            // ignore it, always answering 0.
            b.invoke(0_i64, Operand::Const(read.index() as i64), Some(r));
            b.ret(r0.index() as i64);
            b.build().unwrap()
        };
        let sys = System::new(vec![obj], vec![writer, bogus_reader]);
        let labels = [
            OpLabel {
                port: PortId::new(0),
                inv: write1,
            },
            OpLabel {
                port: PortId::new(1),
                inv: read,
            },
        ];
        let check = check_one_shot_implementation(&sys, &reg, init, &labels, 10_000).unwrap();
        assert!(
            !check.holds(),
            "a read strictly after the write must return 1"
        );
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn oversized_history_is_rejected() {
        let ty = reg_ty();
        let o = op(0, "read", "0", (0, 1), &ty);
        let _ = ConcurrentHistory::new(vec![o; 65]);
    }
}
