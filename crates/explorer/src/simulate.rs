//! Random-schedule sampling for systems beyond exhaustive reach.
//!
//! Exhaustive exploration ([`crate::explore`]) is the proof-strength
//! check, but its state space grows exponentially with processes and
//! object sizes. For larger instances this module samples executions
//! under a seeded adversary: at each step it picks a random undecided
//! process (and a random outcome of nondeterministic objects) and runs
//! to termination. Sampling can only *refute* (a violation found is
//! real); it cannot prove. The two modes are complementary, and tests
//! use sampling as a smoke layer where exhaustion is infeasible.
//!
//! Determinism: the same `seed` always produces the same schedules, so
//! failures are reproducible.

use std::collections::BTreeSet;

use crate::error::ExplorerError;
use crate::system::System;

/// A tiny deterministic xorshift generator — enough adversary for
/// schedule sampling without pulling an RNG dependency into the checker.
#[derive(Clone, Debug)]
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Statistics from a sampling run.
#[derive(Clone, Debug)]
pub struct SampleStats {
    /// Number of complete executions sampled.
    pub executions: usize,
    /// Distinct decision vectors observed.
    pub decisions: BTreeSet<Vec<i64>>,
    /// The longest sampled execution.
    pub max_depth: usize,
    /// Executions that exceeded the step budget (suspected
    /// non-wait-freedom; sampling cannot distinguish "slow" from
    /// "infinite").
    pub timeouts: usize,
}

impl SampleStats {
    /// `true` if every sampled decision vector was constant (agreement
    /// held on every sampled schedule).
    pub fn decisions_agree(&self) -> bool {
        self.decisions
            .iter()
            .all(|v| v.windows(2).all(|w| w[0] == w[1]))
    }

    /// `true` if every sampled decision was in `allowed`.
    pub fn decisions_within(&self, allowed: &[i64]) -> bool {
        self.decisions
            .iter()
            .all(|v| v.iter().all(|d| allowed.contains(d)))
    }
}

/// Samples `executions` random schedules of `system`, each bounded by
/// `max_steps` shared accesses.
///
/// # Errors
///
/// Returns [`ExplorerError`] on malformed programs (the same errors the
/// exhaustive explorer reports).
pub fn sample_executions(
    system: &System,
    executions: usize,
    max_steps: usize,
    seed: u64,
) -> Result<SampleStats, ExplorerError> {
    let mut rng = XorShift(seed.max(1));
    let mut stats = SampleStats {
        executions: 0,
        decisions: BTreeSet::new(),
        max_depth: 0,
        timeouts: 0,
    };
    for _ in 0..executions {
        let mut cfg = system.initial_config()?;
        let mut steps = 0usize;
        loop {
            if cfg.is_terminal() {
                stats.executions += 1;
                stats.max_depth = stats.max_depth.max(steps);
                stats.decisions.insert(cfg.decisions());
                break;
            }
            if steps >= max_steps {
                stats.timeouts += 1;
                break;
            }
            // Pick a random undecided process.
            let undecided: Vec<usize> = (0..system.processes())
                .filter(|&p| cfg.procs[p].decided.is_none())
                .collect();
            let p = undecided[rng.below(undecided.len())];
            let mut children = system.step(&cfg, p)?;
            debug_assert!(!children.is_empty(), "undecided process can step");
            let pick = rng.below(children.len());
            cfg = children.swap_remove(pick);
            steps += 1;
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, ExploreOptions};
    use crate::program::{BinOp, ProgramBuilder};
    use crate::system::ObjectInstance;
    use std::sync::Arc;
    use wfc_spec::canonical;

    fn tas_race() -> System {
        let tas = Arc::new(canonical::test_and_set(2));
        let init = tas.state_id("unset").unwrap();
        let inv = tas.invocation_id("test_and_set").unwrap().index() as i64;
        let obj = ObjectInstance::identity_ports(tas, init, 2);
        let mk = || {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            b.invoke(0_i64, inv, Some(r));
            b.ret(r);
            b.build().unwrap()
        };
        System::new(vec![obj], vec![mk(), mk()])
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let sys = tas_race();
        let a = sample_executions(&sys, 50, 100, 42).unwrap();
        let b = sample_executions(&sys, 50, 100, 42).unwrap();
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.max_depth, b.max_depth);
    }

    #[test]
    fn sampling_covers_what_exhaustion_finds_on_small_systems() {
        let sys = tas_race();
        let sampled = sample_executions(&sys, 200, 100, 7).unwrap();
        let exhaustive = explore(&sys, &ExploreOptions::default()).unwrap();
        // Sampled decisions ⊆ exhaustive; with 200 samples of a 2-schedule
        // system, equality in practice.
        assert!(sampled.decisions.is_subset(&exhaustive.decisions));
        assert_eq!(sampled.decisions, exhaustive.decisions);
        assert_eq!(sampled.max_depth, exhaustive.depth);
        assert_eq!(sampled.timeouts, 0);
    }

    #[test]
    fn spin_loops_time_out_instead_of_hanging() {
        let reg = Arc::new(canonical::boolean_register(2));
        let init = reg.state_id("v0").unwrap();
        let read = reg.invocation_id("read").unwrap();
        let r1 = reg.response_id("1").unwrap();
        let obj = ObjectInstance::identity_ports(reg, init, 1);
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        let t = b.var("t");
        let top = b.fresh_label();
        b.bind(top);
        b.invoke(0_i64, read.index() as i64, Some(r));
        b.compute(t, r, BinOp::Eq, r1.index() as i64);
        b.jump_if_zero(t, top);
        b.ret(r);
        let sys = System::new(vec![obj], vec![b.build().unwrap()]);
        let stats = sample_executions(&sys, 5, 50, 3).unwrap();
        assert_eq!(stats.timeouts, 5);
        assert_eq!(stats.executions, 0);
    }

    /// Sampling scales where exhaustion is expensive: the 3-process
    /// CAS+announce protocol's full graph has hundreds of configurations
    /// per vector; sampling checks thousands of schedules quickly.
    #[test]
    fn sampling_smokes_larger_protocols() {
        let cs = wfc_consensus_system_for_test();
        let stats = sample_executions(&cs, 500, 200, 11).unwrap();
        assert_eq!(stats.timeouts, 0);
        assert!(stats.decisions_agree());
        assert!(stats.decisions_within(&[0, 1]));
    }

    fn wfc_consensus_system_for_test() -> System {
        // A local 3-process sticky-bit consensus (register-free) to avoid
        // a circular dev-dependency on wfc-consensus.
        let sticky = Arc::new(canonical::sticky_bit(3));
        let bot = sticky.state_id("⊥").unwrap();
        let obj = ObjectInstance::identity_ports(Arc::clone(&sticky), bot, 3);
        let resp0 = sticky.response_id("0").unwrap().index() as i64;
        let programs = (0..3)
            .map(|k| {
                let inv = sticky
                    .invocation_id(if k % 2 == 0 { "write0" } else { "write1" })
                    .unwrap()
                    .index() as i64;
                let mut b = ProgramBuilder::new();
                let r = b.var("r");
                let dec = b.var("dec");
                b.invoke(0_i64, inv, Some(r));
                b.compute(dec, r, BinOp::Sub, resp0);
                b.ret(dec);
                b.build().unwrap()
            })
            .collect();
        System::new(vec![obj], programs)
    }
}
