//! Deterministic process programs (paper, Section 2.2).
//!
//! An implementation consists of "deterministic programs that operate on
//! \[shared\] objects". We represent programs in a small register-machine
//! bytecode rather than as Rust closures for two reasons:
//!
//! 1. **Explorability.** Local states (program counter + variables) are
//!    plain data, so system configurations can be hashed and memoised by
//!    the exhaustive explorer — the paper's execution-tree model
//!    (Section 4.2) requires enumerating *all* interleavings.
//! 2. **Transformability.** The register-elimination compiler of Theorem 5
//!    (implemented in `wfc-core`) rewrites programs: it replaces register
//!    accesses with the one-use-bit subroutines of Sections 4.3 and 5.
//!    Rewriting is only tractable over a first-class program representation.
//!
//! Programs compute over `i64` variables; invocation and response
//! identifiers are carried as their indices. Object indices may be computed
//! dynamically (needed for the `bits[i_w, j_w]` array addressing of
//! Section 4.3).

use std::fmt;

use crate::error::ProgramError;

/// A local variable slot of a [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub usize);

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// An operand: a constant or a variable reference.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// A literal value.
    Const(i64),
    /// The current value of a variable.
    Var(Var),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Const(c) => write!(f, "{c}"),
            Operand::Var(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Operand {
    fn from(c: i64) -> Self {
        Operand::Const(c)
    }
}

impl From<Var> for Operand {
    fn from(v: Var) -> Self {
        Operand::Var(v)
    }
}

/// Binary operations of the local ALU.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Euclidean remainder; `x mod 0` is a runtime error.
    Mod,
    /// Equality test (1 if equal, 0 otherwise).
    Eq,
    /// Strict less-than test (1 or 0).
    Lt,
}

impl BinOp {
    fn apply(self, a: i64, b: i64) -> Result<i64, ProgramError> {
        Ok(match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Mod => {
                if b == 0 {
                    return Err(ProgramError::DivisionByZero);
                }
                a.rem_euclid(b)
            }
            BinOp::Eq => i64::from(a == b),
            BinOp::Lt => i64::from(a < b),
        })
    }
}

/// One instruction of a [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// `dst := lhs op rhs`.
    Compute {
        /// Destination variable.
        dst: Var,
        /// Left operand.
        lhs: Operand,
        /// Operation.
        op: BinOp,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst := src`.
    Copy {
        /// Destination variable.
        dst: Var,
        /// Source operand.
        src: Operand,
    },
    /// Invoke `inv` on shared object `obj`; if `store` is set, the response
    /// index is written there. The only instruction that touches shared
    /// state: one `Invoke` is one low-level step of the paper's execution
    /// trees.
    Invoke {
        /// Object index into the system's object list (computable).
        obj: Operand,
        /// Invocation index into the object's type (computable).
        inv: Operand,
        /// Where to store the response index, if anywhere.
        store: Option<Var>,
    },
    /// Jump to `target` if `cond` evaluates to zero.
    JumpIfZero {
        /// Condition operand.
        cond: Operand,
        /// Target instruction index.
        target: usize,
    },
    /// Unconditional jump.
    Jump {
        /// Target instruction index.
        target: usize,
    },
    /// Terminate, deciding `value`.
    Return {
        /// The decision value.
        value: Operand,
    },
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Mod => "mod",
            BinOp::Eq => "==",
            BinOp::Lt => "<",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Compute { dst, lhs, op, rhs } => write!(f, "{dst} := {lhs} {op} {rhs}"),
            Instr::Copy { dst, src } => write!(f, "{dst} := {src}"),
            Instr::Invoke { obj, inv, store } => match store {
                Some(v) => write!(f, "{v} := invoke obj[{obj}].inv[{inv}]"),
                None => write!(f, "invoke obj[{obj}].inv[{inv}]"),
            },
            Instr::JumpIfZero { cond, target } => write!(f, "if {cond} == 0 goto {target}"),
            Instr::Jump { target } => write!(f, "goto {target}"),
            Instr::Return { value } => write!(f, "return {value}"),
        }
    }
}

/// A deterministic program: straight-line bytecode over local variables and
/// shared-object invocations. Build with [`ProgramBuilder`].
///
/// The [`Display`](fmt::Display) implementation is a disassembly, one
/// instruction per line with its index — handy for inspecting the output
/// of the Theorem 5 compiler.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Program {
    code: Vec<Instr>,
    vars: usize,
    init: Vec<i64>,
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program ({} vars, init {:?})", self.vars, self.init)?;
        for (k, instr) in self.code.iter().enumerate() {
            writeln!(f, "  {k:>3}: {instr}")?;
        }
        Ok(())
    }
}

impl Program {
    /// The instruction sequence.
    pub fn code(&self) -> &[Instr] {
        &self.code
    }

    /// The number of variable slots.
    pub fn var_count(&self) -> usize {
        self.vars
    }

    /// Initial variable values (the process's "input" is conventionally
    /// placed in designated variables before the run).
    pub fn init_vars(&self) -> &[i64] {
        &self.init
    }

    /// Returns a copy of the program with variable `var` initialised to
    /// `value` — how per-process inputs are injected when building the
    /// `2^n` execution trees of Section 4.2.
    pub fn with_input(&self, var: Var, value: i64) -> Program {
        let mut p = self.clone();
        p.init[var.0] = value;
        p
    }
}

/// The run state of one process: its program counter and variables.
///
/// After [`local_run`], `pc` either addresses an [`Instr::Invoke`] or the
/// process has decided (`decided.is_some()`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ProcState {
    /// Next instruction index.
    pub pc: usize,
    /// Variable values.
    pub vars: Vec<i64>,
    /// Decision value once the process has returned.
    pub decided: Option<i64>,
}

impl ProcState {
    /// The initial state of `program` *before* the local prefix has run.
    pub fn initial(program: &Program) -> ProcState {
        ProcState {
            pc: 0,
            vars: program.init_vars().to_vec(),
            decided: None,
        }
    }

    /// Evaluates an operand against this state's variables.
    pub fn eval(&self, op: Operand) -> i64 {
        match op {
            Operand::Const(c) => c,
            Operand::Var(v) => self.vars[v.0],
        }
    }
}

/// Maximum number of purely-local instructions executed per scheduler step
/// before the run is declared divergent. Wait-freedom also covers local
/// loops; this fuel bound turns them into errors instead of hangs.
pub const LOCAL_FUEL: usize = 100_000;

/// Advances `state` through local instructions until it reaches an
/// [`Instr::Invoke`] (leaving `pc` addressing it) or returns (setting
/// `decided`).
///
/// # Errors
///
/// Returns a [`ProgramError`] on out-of-range jumps, running off the end of
/// the program, division by zero, or exceeding [`LOCAL_FUEL`].
pub fn local_run(program: &Program, state: &mut ProcState) -> Result<(), ProgramError> {
    if state.decided.is_some() {
        return Ok(());
    }
    for _ in 0..LOCAL_FUEL {
        let instr = *program
            .code
            .get(state.pc)
            .ok_or(ProgramError::PcOutOfRange { pc: state.pc })?;
        match instr {
            Instr::Compute { dst, lhs, op, rhs } => {
                let a = state.eval(lhs);
                let b = state.eval(rhs);
                state.vars[dst.0] = op.apply(a, b)?;
                state.pc += 1;
            }
            Instr::Copy { dst, src } => {
                state.vars[dst.0] = state.eval(src);
                state.pc += 1;
            }
            Instr::Invoke { .. } => return Ok(()),
            Instr::JumpIfZero { cond, target } => {
                if state.eval(cond) == 0 {
                    state.pc = target;
                } else {
                    state.pc += 1;
                }
            }
            Instr::Jump { target } => state.pc = target,
            Instr::Return { value } => {
                state.decided = Some(state.eval(value));
                return Ok(());
            }
        }
    }
    Err(ProgramError::LocalDivergence)
}

/// A forward-reference label handed out by [`ProgramBuilder::fresh_label`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(usize);

/// Builder for [`Program`]s with labels and named variables
/// ([C-BUILDER]).
///
/// # Examples
///
/// A process that test-and-sets and decides whether it won:
///
/// ```
/// use wfc_explorer::program::{ProgramBuilder, Operand};
///
/// let mut b = ProgramBuilder::new();
/// let won = b.var("won");
/// b.invoke(Operand::Const(0), Operand::Const(0), Some(won)); // TAS object 0
/// b.ret(won);
/// let p = b.build()?;
/// assert_eq!(p.code().len(), 2);
/// # Ok::<(), wfc_explorer::ExplorerError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    code: Vec<Instr>,
    var_names: Vec<String>,
    init: Vec<i64>,
    labels: Vec<Option<usize>>,
    /// (instruction index, label) pairs awaiting back-patching.
    fixups: Vec<(usize, Label)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Declares (or looks up) a variable by name, initialised to 0.
    pub fn var(&mut self, name: &str) -> Var {
        if let Some(k) = self.var_names.iter().position(|v| v == name) {
            Var(k)
        } else {
            self.var_names.push(name.to_owned());
            self.init.push(0);
            Var(self.var_names.len() - 1)
        }
    }

    /// Declares a variable with an initial value.
    pub fn var_init(&mut self, name: &str, value: i64) -> Var {
        let v = self.var(name);
        self.init[v.0] = value;
        v
    }

    /// Allocates a label to be bound later with [`ProgramBuilder::bind`].
    pub fn fresh_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next instruction emitted.
    pub fn bind(&mut self, label: Label) {
        self.labels[label.0] = Some(self.code.len());
    }

    /// Emits `dst := lhs op rhs`.
    pub fn compute(
        &mut self,
        dst: Var,
        lhs: impl Into<Operand>,
        op: BinOp,
        rhs: impl Into<Operand>,
    ) {
        self.code.push(Instr::Compute {
            dst,
            lhs: lhs.into(),
            op,
            rhs: rhs.into(),
        });
    }

    /// Emits `dst := src`.
    pub fn copy(&mut self, dst: Var, src: impl Into<Operand>) {
        self.code.push(Instr::Copy {
            dst,
            src: src.into(),
        });
    }

    /// Emits an invocation of `inv` on object `obj`, storing the response.
    pub fn invoke(&mut self, obj: impl Into<Operand>, inv: impl Into<Operand>, store: Option<Var>) {
        self.code.push(Instr::Invoke {
            obj: obj.into(),
            inv: inv.into(),
            store,
        });
    }

    /// Emits a conditional jump to `label` when `cond` is zero.
    pub fn jump_if_zero(&mut self, cond: impl Into<Operand>, label: Label) {
        self.fixups.push((self.code.len(), label));
        self.code.push(Instr::JumpIfZero {
            cond: cond.into(),
            target: usize::MAX,
        });
    }

    /// Emits an unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) {
        self.fixups.push((self.code.len(), label));
        self.code.push(Instr::Jump { target: usize::MAX });
    }

    /// Emits a decision.
    pub fn ret(&mut self, value: impl Into<Operand>) {
        self.code.push(Instr::Return {
            value: value.into(),
        });
    }

    /// Finalizes the program, patching labels and validating targets.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::UnboundLabel`] if a referenced label was
    /// never bound, or [`ProgramError::PcOutOfRange`] if a bound label
    /// points past the end of the code.
    pub fn build(mut self) -> Result<Program, ProgramError> {
        for (at, label) in &self.fixups {
            let target = self.labels[label.0].ok_or(ProgramError::UnboundLabel)?;
            if target > self.code.len() {
                return Err(ProgramError::PcOutOfRange { pc: target });
            }
            match &mut self.code[*at] {
                Instr::JumpIfZero { target: t, .. } | Instr::Jump { target: t } => *t = target,
                _ => unreachable!("fixups only point at jumps"),
            }
        }
        Ok(Program {
            code: self.code,
            vars: self.var_names.len(),
            init: self.init,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_arithmetic() {
        let mut b = ProgramBuilder::new();
        let x = b.var_init("x", 5);
        let y = b.var("y");
        b.compute(y, x, BinOp::Mul, 3_i64);
        b.compute(y, y, BinOp::Mod, 4_i64);
        b.ret(y);
        let p = b.build().unwrap();
        let mut s = ProcState::initial(&p);
        local_run(&p, &mut s).unwrap();
        assert_eq!(s.decided, Some(3)); // 15 mod 4
    }

    #[test]
    fn loops_terminate_via_labels() {
        // Sum 0..5 with a while loop.
        let mut b = ProgramBuilder::new();
        let i = b.var("i");
        let acc = b.var("acc");
        let t = b.var("t");
        let top = b.fresh_label();
        let done = b.fresh_label();
        b.bind(top);
        b.compute(t, i, BinOp::Lt, 5_i64);
        b.jump_if_zero(t, done);
        b.compute(acc, acc, BinOp::Add, i);
        b.compute(i, i, BinOp::Add, 1_i64);
        b.jump(top);
        b.bind(done);
        b.ret(acc);
        let p = b.build().unwrap();
        let mut s = ProcState::initial(&p);
        local_run(&p, &mut s).unwrap();
        assert_eq!(s.decided, Some(10));
    }

    #[test]
    fn stops_at_invoke() {
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        b.copy(r, 7_i64);
        b.invoke(0_i64, 1_i64, Some(r));
        b.ret(r);
        let p = b.build().unwrap();
        let mut s = ProcState::initial(&p);
        local_run(&p, &mut s).unwrap();
        assert_eq!(s.pc, 1, "paused at the invoke");
        assert_eq!(s.decided, None);
        assert_eq!(s.vars[0], 7);
    }

    #[test]
    fn local_divergence_is_detected() {
        let mut b = ProgramBuilder::new();
        let top = b.fresh_label();
        b.bind(top);
        b.jump(top);
        let p = b.build().unwrap();
        let mut s = ProcState::initial(&p);
        assert_eq!(local_run(&p, &mut s), Err(ProgramError::LocalDivergence));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        b.compute(x, 1_i64, BinOp::Mod, 0_i64);
        b.ret(x);
        let p = b.build().unwrap();
        let mut s = ProcState::initial(&p);
        assert_eq!(local_run(&p, &mut s), Err(ProgramError::DivisionByZero));
    }

    #[test]
    fn unbound_label_is_rejected() {
        let mut b = ProgramBuilder::new();
        let l = b.fresh_label();
        b.jump(l);
        assert_eq!(b.build().unwrap_err(), ProgramError::UnboundLabel);
    }

    #[test]
    fn falling_off_the_end_is_an_error() {
        let mut b = ProgramBuilder::new();
        let x = b.var("x");
        b.copy(x, 1_i64);
        // no Return
        let p = b.build().unwrap();
        let mut s = ProcState::initial(&p);
        assert_eq!(
            local_run(&p, &mut s),
            Err(ProgramError::PcOutOfRange { pc: 1 })
        );
    }

    #[test]
    fn with_input_overrides_initial_value() {
        let mut b = ProgramBuilder::new();
        let input = b.var("input");
        b.ret(input);
        let p = b.build().unwrap();
        let p1 = p.with_input(input, 1);
        let mut s = ProcState::initial(&p1);
        local_run(&p1, &mut s).unwrap();
        assert_eq!(s.decided, Some(1));
    }

    #[test]
    fn mod_is_euclidean() {
        assert_eq!(BinOp::Mod.apply(-1, 2).unwrap(), 1);
        assert_eq!(BinOp::Mod.apply(5, 2).unwrap(), 1);
    }
}
