//! A tiny scoped work-stealing map for fan-out over independent items.
//!
//! The 2^n input vectors of the Section 4.2 analyses are embarrassingly
//! parallel: [`parallel_map`] fans a slice across a scoped thread pool
//! (plain `std::thread::scope`; the workspace builds offline, without an
//! external runtime) and returns results **in item order**, so callers
//! that merge results left-to-right are deterministic regardless of
//! scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use wfc_obs::metrics::Registry;
use wfc_waitfree::ResultCell;

/// Applies `f` to every item of `items` on up to `threads` workers,
/// returning the results in item order.
///
/// `threads <= 1` runs inline on the calling thread with no overhead.
/// Work is claimed item-by-item from a shared atomic cursor, so uneven
/// item costs (the trees of different input vectors can differ wildly in
/// size) still balance.
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    // The pool has no options struct to hang a knob on, so it follows
    // the process-wide `wfc-obs` flag directly (one relaxed load per
    // call when disabled).
    let obs = wfc_obs::enabled();
    if obs {
        let reg = Registry::global();
        reg.counter("pool.runs").add(1);
        reg.counter("pool.tasks").add(items.len() as u64);
    }
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    // Per-item write-once cells: the cursor claims each item exactly
    // once, so each slot has a unique writer and the wait-free
    // `set`/`take` protocol needs only `R: Send`.
    let slots: Vec<ResultCell<R>> = items.iter().map(|_| ResultCell::new()).collect();
    let cursor = AtomicUsize::new(0);
    let workers = threads.min(items.len());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let started = obs.then(Instant::now);
                let mut claims = 0u64;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    claims += 1;
                    slots[i].set(f(item));
                }
                if let Some(t0) = started {
                    let reg = Registry::global();
                    reg.histogram("pool.worker.claims").record(claims);
                    reg.histogram("pool.worker.busy_ns")
                        .record(t0.elapsed().as_nanos() as u64);
                }
            });
        }
    });
    slots
        .iter()
        .map(|slot| slot.take().expect("every slot filled by a worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_item_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 8] {
            let out = parallel_map(threads, &items, |&x| x * x);
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_item_inputs_work() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(4, &none, |&x| x).is_empty());
        assert_eq!(parallel_map(4, &[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(4, &items, |&x| (0..(x % 7) * 1000).sum::<u64>());
        assert_eq!(out.len(), 32);
    }
}
