//! Human-readable execution traces.
//!
//! [`find_violation`](crate::find_violation) and the sampler return raw
//! schedules — sequences of process indices. [`replay`] walks a schedule
//! through the system and renders each step with the object, invocation
//! and response involved, so a failing interleaving can actually be read:
//!
//! ```text
//! step 1: process 0 invokes write1 on obj1 (register2) → ok
//! step 2: process 1 invokes test_and_set on obj2 (test_and_set) → 0
//! …
//! ```
//!
//! Replay is deterministic for deterministic objects; for
//! nondeterministic ones, the adversary's choices are re-resolved to the
//! first matching outcome, which reproduces the decision vector whenever
//! the schedule came from a deterministic system.

use std::fmt;

use crate::error::ExplorerError;
use crate::system::System;

/// Rendering knobs for [`replay_with`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceOptions {
    /// Record the cumulative per-object access counts after every step
    /// (the CLI's `--timings` view), so a rendered violation trace
    /// doubles as access-count evidence: the reads/writes columns of the
    /// final step are this execution's contribution to the paper's
    /// `r_b`/`w_b`.
    pub timings: bool,
}

impl TraceOptions {
    /// Options with per-step access accounting on.
    pub fn with_timings() -> Self {
        TraceOptions { timings: true }
    }
}

/// Cumulative accesses of one object at some point in an execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjAccess {
    /// The object index.
    pub obj: usize,
    /// All invocations so far.
    pub total: u32,
    /// Invocations whose name starts with `read`.
    pub reads: u32,
    /// Invocations whose name starts with `write`.
    pub writes: u32,
}

/// One rendered step of a replayed execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceStep {
    /// The acting process.
    pub process: usize,
    /// The object accessed.
    pub obj: usize,
    /// The object's type name.
    pub ty_name: String,
    /// The invocation name.
    pub inv: String,
    /// The response name.
    pub resp: String,
    /// The process's decision if this step completed its program.
    pub decided: Option<i64>,
    /// Cumulative per-object access counts *including* this step, present
    /// when replayed with [`TraceOptions::timings`].
    pub accesses: Option<Vec<ObjAccess>>,
}

impl fmt::Display for TraceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "process {} invokes {} on obj{} ({}) → {}",
            self.process, self.inv, self.obj, self.ty_name, self.resp
        )?;
        if let Some(d) = self.decided {
            write!(f, "  [decides {d}]")?;
        }
        if let Some(accesses) = &self.accesses {
            write!(f, "  [accesses:")?;
            for a in accesses {
                write!(f, " obj{}={} (r{} w{})", a.obj, a.total, a.reads, a.writes)?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// A replayed execution: the steps plus the final decisions.
#[derive(Clone, Debug)]
pub struct Trace {
    /// The rendered steps, in schedule order.
    pub steps: Vec<TraceStep>,
    /// Decisions of all processes at the end (None = still undecided,
    /// possible when the schedule is a prefix).
    pub decisions: Vec<Option<i64>>,
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, step) in self.steps.iter().enumerate() {
            writeln!(f, "step {}: {}", k + 1, step)?;
        }
        write!(f, "decisions: {:?}", self.decisions)
    }
}

/// Replays `schedule` (one process index per step) through `system`.
///
/// # Errors
///
/// Returns [`ExplorerError`] on malformed programs, or if the schedule
/// asks a decided process to step.
pub fn replay(system: &System, schedule: &[usize]) -> Result<Trace, ExplorerError> {
    replay_with(system, schedule, &TraceOptions::default())
}

/// Replays `schedule` with explicit [`TraceOptions`]; with
/// [`TraceOptions::timings`] every step carries cumulative per-object
/// access counts.
///
/// # Errors
///
/// Returns [`ExplorerError`] on malformed programs, or if the schedule
/// asks a decided process to step.
pub fn replay_with(
    system: &System,
    schedule: &[usize],
    opts: &TraceOptions,
) -> Result<Trace, ExplorerError> {
    let mut cfg = system.initial_config()?;
    let mut steps = Vec::with_capacity(schedule.len());
    let mut tallies: Vec<ObjAccess> = system
        .objects()
        .iter()
        .enumerate()
        .map(|(obj, _)| ObjAccess {
            obj,
            total: 0,
            reads: 0,
            writes: 0,
        })
        .collect();
    for &p in schedule {
        let access = system
            .pending_access(&cfg, p)?
            .ok_or(ExplorerError::NotWaitFree)?; // decided process scheduled: bogus schedule
        let before_state = cfg.objects[access.obj];
        let obj = &system.objects()[access.obj];
        let outcome = obj.ty().outcomes(before_state, access.port, access.inv)[0];
        let children = system.step(&cfg, p)?;
        cfg = children
            .into_iter()
            .next()
            .expect("undecided process steps");
        let inv_name = obj.ty().invocation_name(access.inv);
        let accesses = if opts.timings {
            let t = &mut tallies[access.obj];
            t.total += 1;
            if inv_name.starts_with("read") {
                t.reads += 1;
            } else if inv_name.starts_with("write") {
                t.writes += 1;
            }
            Some(tallies.clone())
        } else {
            None
        };
        steps.push(TraceStep {
            process: p,
            obj: access.obj,
            ty_name: obj.ty().name().to_owned(),
            inv: inv_name.to_owned(),
            resp: obj.ty().response_name(outcome.resp).to_owned(),
            decided: cfg.procs[p].decided,
            accesses,
        });
    }
    Ok(Trace {
        steps,
        decisions: cfg.procs.iter().map(|p| p.decided).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{find_violation, ExploreOptions};
    use crate::program::ProgramBuilder;
    use crate::system::ObjectInstance;
    use std::sync::Arc;
    use wfc_spec::canonical;

    fn tas_race() -> System {
        let tas = Arc::new(canonical::test_and_set(2));
        let init = tas.state_id("unset").unwrap();
        let inv = tas.invocation_id("test_and_set").unwrap().index() as i64;
        let obj = ObjectInstance::identity_ports(tas, init, 2);
        let mk = || {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            b.invoke(0_i64, inv, Some(r));
            b.ret(r);
            b.build().unwrap()
        };
        System::new(vec![obj], vec![mk(), mk()])
    }

    #[test]
    fn replay_renders_a_full_schedule() {
        let sys = tas_race();
        let trace = replay(&sys, &[1, 0]).unwrap();
        assert_eq!(trace.steps.len(), 2);
        assert_eq!(trace.steps[0].process, 1);
        assert_eq!(trace.steps[0].inv, "test_and_set");
        assert_eq!(trace.steps[0].resp, "0", "first TAS wins");
        assert_eq!(trace.steps[1].resp, "1");
        assert_eq!(trace.decisions, vec![Some(1), Some(0)]);
        let rendered = trace.to_string();
        assert!(rendered.contains("step 1: process 1 invokes test_and_set"));
    }

    #[test]
    fn replay_reproduces_violation_schedules() {
        let sys = tas_race();
        let v = find_violation(&sys, &[0, 1], &ExploreOptions::default())
            .unwrap()
            .expect("race disagrees");
        let trace = replay(&sys, &v.schedule).unwrap();
        let replayed: Vec<i64> = trace.decisions.iter().map(|d| d.unwrap()).collect();
        assert_eq!(replayed, v.decisions);
    }

    #[test]
    fn prefix_schedules_leave_processes_undecided() {
        let sys = tas_race();
        let trace = replay(&sys, &[0]).unwrap();
        assert_eq!(trace.decisions[0], Some(0));
        assert_eq!(trace.decisions[1], None);
    }

    #[test]
    fn scheduling_a_decided_process_errors() {
        let sys = tas_race();
        assert!(replay(&sys, &[0, 0]).is_err());
    }

    /// Two writes then three reads on one register.
    fn writer_reader() -> System {
        let reg = Arc::new(canonical::boolean_register(2));
        let init = reg.state_id("v0").unwrap();
        let read = reg.invocation_id("read").unwrap().index() as i64;
        let write1 = reg.invocation_id("write1").unwrap().index() as i64;
        let obj = ObjectInstance::identity_ports(reg, init, 2);
        let writer = {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            b.invoke(0_i64, write1, Some(r));
            b.invoke(0_i64, write1, Some(r));
            b.ret(0_i64);
            b.build().unwrap()
        };
        let reader = {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            for _ in 0..3 {
                b.invoke(0_i64, read, Some(r));
            }
            b.ret(r);
            b.build().unwrap()
        };
        System::new(vec![obj], vec![writer, reader])
    }

    #[test]
    fn timings_mode_accumulates_per_object_accesses() {
        let sys = writer_reader();
        let trace = replay_with(&sys, &[0, 1, 0, 1, 1], &TraceOptions::with_timings()).unwrap();
        let cum: Vec<ObjAccess> = trace
            .steps
            .iter()
            .map(|s| s.accesses.as_ref().unwrap()[0])
            .collect();
        assert_eq!(
            cum.iter().map(|a| a.total).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5],
            "total accesses grow by one per step"
        );
        let last = cum.last().unwrap();
        assert_eq!((last.reads, last.writes), (3, 2));
        // The final step's tallies are this execution's contribution to
        // the paper's r_b / w_b for the register.
        let rendered = trace.to_string();
        assert!(
            rendered.contains("[accesses: obj0=5 (r3 w2)]"),
            "{rendered}"
        );
    }

    #[test]
    fn default_replay_carries_no_timings() {
        let sys = writer_reader();
        let trace = replay(&sys, &[0, 1]).unwrap();
        assert!(trace.steps.iter().all(|s| s.accesses.is_none()));
        assert!(!trace.to_string().contains("accesses"));
    }
}
