//! Valency analysis of consensus systems (FLP \[6\], Herlihy \[7\]).
//!
//! Theorem 5's first case rests on the classical result that registers
//! alone cannot implement 2-process consensus \[4,7,14\]. The standard proof
//! is a *valency* argument: a configuration is `v`-valent if only the
//! consensus value `v` is reachable from it, and *bivalent* if both values
//! are. Any correct wait-free protocol has a bivalent initial
//! configuration (over some input vector) but registers cannot escape a
//! *critical* (bivalent, all-successors-univalent) configuration, because
//! overlapping reads and writes commute or overwrite.
//!
//! [`analyze_valency`] mechanises the classification for a concrete
//! [`System`]: it computes the valency of every reachable configuration
//! (cycles allowed — the interesting refuted protocols are often not
//! wait-free) and reports bivalent and critical counts. Together with
//! [`crate::explore::explore`], it refutes candidate register-only
//! consensus protocols and exhibits the structure of the impossibility.

use std::collections::BTreeSet;

use crate::error::ExplorerError;
use crate::explore::ExploreOptions;
use crate::graph::ConfigGraph;
use crate::system::System;

/// The valency classification of one system.
#[derive(Clone, Debug)]
pub struct ValencyAnalysis {
    /// Distinct decision values reachable from the initial configuration.
    pub initial_valency: BTreeSet<i64>,
    /// Number of reachable configurations.
    pub configs: usize,
    /// Configurations from which at least two decision values are
    /// reachable.
    pub bivalent: usize,
    /// Configurations from which exactly one decision value is reachable.
    pub univalent: usize,
    /// Configurations from which **no** terminal configuration is
    /// reachable (only possible in non-wait-free systems).
    pub stuck: usize,
    /// Bivalent configurations all of whose successors are univalent:
    /// the *critical* configurations of the FLP/Herlihy argument.
    pub critical: usize,
    /// `true` if the system admits an infinite execution.
    pub has_cycle: bool,
}

impl ValencyAnalysis {
    /// `true` if the initial configuration is bivalent.
    pub fn initially_bivalent(&self) -> bool {
        self.initial_valency.len() >= 2
    }
}

/// Computes the valency of every reachable configuration of `system`.
///
/// A configuration's valency is the set of decision values `v` such that
/// some reachable terminal configuration decides `v` (taking the first
/// process's decision as *the* consensus value — meaningful when the
/// system satisfies agreement; disagreeing terminals contribute all their
/// values).
///
/// Cycles are permitted: valencies are computed by backward fixpoint
/// propagation from terminal configurations.
///
/// # Errors
///
/// Returns [`ExplorerError`] on malformed programs or budget exhaustion.
pub fn analyze_valency(
    system: &System,
    opts: &ExploreOptions,
) -> Result<ValencyAnalysis, ExplorerError> {
    let _span = wfc_obs::span::enter_if(opts.obs.spans, "analyze_valency", String::new());
    if opts.obs.metrics {
        wfc_obs::metrics::Registry::global()
            .counter("explorer.valency_analyses")
            .add(1);
    }
    let graph = ConfigGraph::build(system, opts)?;

    // Enumerate the decision-value universe.
    let mut universe: Vec<i64> = Vec::new();
    for v in graph.terminals() {
        for d in graph.configs[v].decisions() {
            if !universe.contains(&d) {
                universe.push(d);
            }
        }
    }
    assert!(
        universe.len() <= 64,
        "valency analysis supports at most 64 distinct decision values"
    );
    let mask_of = |d: i64| -> u64 { 1u64 << universe.iter().position(|&u| u == d).unwrap() };

    // valency[v] as a bitmask over `universe`; fixpoint over reversed edges.
    let mut valency: Vec<u64> = vec![0; graph.len()];
    let mut parents: Vec<Vec<usize>> = vec![Vec::new(); graph.len()];
    for (v, kids) in graph.children.iter().enumerate() {
        for &(_, c) in kids {
            parents[c].push(v);
        }
    }
    let mut worklist: Vec<usize> = Vec::new();
    for v in graph.terminals() {
        let mut m = 0u64;
        for d in graph.configs[v].decisions() {
            m |= mask_of(d);
        }
        valency[v] = m;
        worklist.push(v);
    }
    while let Some(v) = worklist.pop() {
        let m = valency[v];
        for &p in &parents[v] {
            let merged = valency[p] | m;
            if merged != valency[p] {
                valency[p] = merged;
                worklist.push(p);
            }
        }
    }

    let mut bivalent = 0usize;
    let mut univalent = 0usize;
    let mut stuck = 0usize;
    let mut critical = 0usize;
    for v in 0..graph.len() {
        match valency[v].count_ones() {
            0 => stuck += 1,
            1 => univalent += 1,
            _ => {
                bivalent += 1;
                let all_kids_univalent = !graph.children[v].is_empty()
                    && graph.children[v]
                        .iter()
                        .all(|&(_, c)| valency[c].count_ones() == 1);
                if all_kids_univalent {
                    critical += 1;
                }
            }
        }
    }

    let initial_valency = universe
        .iter()
        .enumerate()
        .filter(|&(k, _)| valency[graph.root] & (1 << k) != 0)
        .map(|(_, &d)| d)
        .collect();

    Ok(ValencyAnalysis {
        initial_valency,
        configs: graph.len(),
        bivalent,
        univalent,
        stuck,
        critical,
        has_cycle: graph.has_cycle,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{BinOp, Operand, ProgramBuilder};
    use crate::system::ObjectInstance;
    use std::sync::Arc;
    use wfc_spec::canonical;

    /// The standard 2-process consensus protocol from one TAS object and
    /// two SRSW registers: write own input, TAS, winner takes own value,
    /// loser takes the other's.
    fn tas_consensus(inputs: [i64; 2]) -> System {
        let reg = Arc::new(canonical::boolean_register(2));
        let tas = Arc::new(canonical::test_and_set(2));
        let v0 = reg.state_id("v0").unwrap();
        let unset = tas.state_id("unset").unwrap();
        let read = reg.invocation_id("read").unwrap().index() as i64;
        let write = |v: i64| {
            reg.invocation_id(if v == 0 { "write0" } else { "write1" })
                .unwrap()
                .index() as i64
        };
        let tas_inv = tas.invocation_id("test_and_set").unwrap().index() as i64;
        let resp_of = |name: &str| reg.response_id(name).unwrap().index() as i64;
        // Objects: 0 = reg of process 0, 1 = reg of process 1, 2 = TAS.
        // reg[p] is written by p (port 0) and read by 1-p (port 1).
        let objects = [
            ObjectInstance::new(
                reg.clone(),
                v0,
                vec![
                    Some(wfc_spec::PortId::new(0)),
                    Some(wfc_spec::PortId::new(1)),
                ],
            ),
            ObjectInstance::new(
                reg.clone(),
                v0,
                vec![
                    Some(wfc_spec::PortId::new(1)),
                    Some(wfc_spec::PortId::new(0)),
                ],
            ),
            ObjectInstance::identity_ports(tas, unset, 2),
        ];
        let mk = |me: usize, input: i64| {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            let t = b.var("t");
            let lose = b.fresh_label();
            // Announce own input.
            b.invoke(me as i64, write(input), Some(r));
            // Race on the TAS.
            b.invoke(2_i64, tas_inv, Some(r));
            b.compute(t, r, BinOp::Eq, 0_i64); // r == "0" response index?
            b.jump_if_zero(t, lose);
            b.ret(input);
            b.bind(lose);
            // Read the other's announcement and decide it.
            b.invoke(Operand::Const(1 - me as i64), read, Some(r));
            let is_one = b.var("is_one");
            b.compute(is_one, r, BinOp::Eq, resp_of("1"));
            b.ret(is_one);
            b.build().unwrap()
        };
        System::new(
            vec![objects[0].clone(), objects[1].clone(), objects[2].clone()],
            vec![mk(0, inputs[0]), mk(1, inputs[1])],
        )
    }

    #[test]
    fn mixed_inputs_are_bivalent_for_tas_consensus() {
        let a = analyze_valency(&tas_consensus([0, 1]), &ExploreOptions::default()).unwrap();
        assert!(a.initially_bivalent(), "either process may win the TAS");
        assert!(!a.has_cycle);
        assert!(a.critical >= 1, "the TAS race is the critical point");
        assert_eq!(a.stuck, 0);
    }

    #[test]
    fn equal_inputs_are_univalent() {
        let a = analyze_valency(&tas_consensus([1, 1]), &ExploreOptions::default()).unwrap();
        assert_eq!(a.initial_valency, BTreeSet::from([1]));
        assert_eq!(a.bivalent, 0);
    }

    /// A naive register-only "consensus" (each writes then reads the other;
    /// on conflict keep own value) violates agreement — valency analysis
    /// sees both values, and `explore` shows disagreement.
    #[test]
    fn naive_register_protocol_is_refuted() {
        let reg = Arc::new(canonical::boolean_register(2));
        let v0 = reg.state_id("v0").unwrap();
        let read = reg.invocation_id("read").unwrap().index() as i64;
        let objects = vec![
            ObjectInstance::new(
                reg.clone(),
                v0,
                vec![
                    Some(wfc_spec::PortId::new(0)),
                    Some(wfc_spec::PortId::new(1)),
                ],
            ),
            ObjectInstance::new(
                reg.clone(),
                v0,
                vec![
                    Some(wfc_spec::PortId::new(1)),
                    Some(wfc_spec::PortId::new(0)),
                ],
            ),
        ];
        let mk = |me: usize, input: i64| {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            let w = reg
                .invocation_id(if input == 0 { "write0" } else { "write1" })
                .unwrap()
                .index() as i64;
            b.invoke(me as i64, w, Some(r));
            b.invoke(1 - me as i64, read, Some(r));
            // Decide own input regardless: trivially violates agreement.
            b.ret(input);
            b.build().unwrap()
        };
        let sys = System::new(objects, vec![mk(0, 0), mk(1, 1)]);
        let e = crate::explore::explore(&sys, &ExploreOptions::default()).unwrap();
        assert!(!e.decisions_agree(), "naive protocol disagrees");
        let a = analyze_valency(&sys, &ExploreOptions::default()).unwrap();
        assert!(a.initially_bivalent());
        assert_eq!(a.stuck, 0);
    }
}
