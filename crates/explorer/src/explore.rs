//! Exhaustive exploration of all interleavings (paper, Section 4.2).
//!
//! The paper analyses wait-free implementations through *execution trees*:
//! nodes are configurations, children are the results of single low-level
//! operations, and wait-freedom makes every tree finite (König's Lemma).
//! [`explore`] builds the configuration graph (the tree with shared
//! subtrees merged), detects infinite executions as cycles, and computes
//! the quantities the paper's Section 4.2 extracts from the trees:
//!
//! * the **depth** `d` — the longest execution, whose maximum over the
//!   `2^n` input vectors is the paper's bound `D`;
//! * **per-object access bounds** — for each object and invocation, the
//!   maximum number of times it is invoked in any execution; for a register
//!   bit `b`, these are the paper's `r_b` and `w_b`;
//! * the set of terminal **decision vectors**, from which consensus
//!   agreement and validity are checked.

use std::collections::BTreeSet;

use crate::error::ExplorerError;
use crate::graph::ConfigGraph;
use crate::system::System;

pub use wfc_spec::control::{Budget, CancelToken, Progress, Wall};

/// Per-call observability knobs: which kinds of instrumentation an
/// exploration records into the `wfc-obs` global registry.
///
/// The default is taken from the process-wide `wfc-obs` enable flag
/// (`WFC_OBS=1` or [`wfc_obs::set_enabled`]), so plain
/// `ExploreOptions::default()` picks up the environment; [`ObsOptions::on`]
/// and [`ObsOptions::off`] override it per call. Instrumentation is a
/// write-only side channel — it never changes any explored quantity, at
/// any thread count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsOptions {
    /// Record counters, gauges and histograms.
    pub metrics: bool,
    /// Record timing spans (per-thread buffers, deterministic merge).
    pub spans: bool,
}

impl ObsOptions {
    /// Everything on, regardless of the global flag.
    pub fn on() -> Self {
        ObsOptions {
            metrics: true,
            spans: true,
        }
    }

    /// Everything off, regardless of the global flag.
    pub fn off() -> Self {
        ObsOptions {
            metrics: false,
            spans: false,
        }
    }

    /// `true` if any instrumentation is requested.
    pub fn any(&self) -> bool {
        self.metrics || self.spans
    }
}

impl Default for ObsOptions {
    fn default() -> Self {
        if wfc_obs::enabled() {
            ObsOptions::on()
        } else {
            ObsOptions::off()
        }
    }
}

/// Budget and parallelism knobs for [`explore`] and
/// [`ConfigGraph::build`].
#[derive(Clone, Copy, Debug)]
pub struct ExploreOptions {
    /// The control-plane budget: the explorer meters the `configs` and
    /// `depth` axes (exactly — see [`Budget::configs_exceeded`]) plus
    /// the optional wall-clock deadline, raising
    /// [`ExplorerError::Exhausted`] at the level-sync point that trips.
    /// A system whose longest execution is exactly `budget.depth` steps
    /// still succeeds.
    pub budget: Budget,
    /// Worker threads for graph discovery: `1` (the default) explores
    /// on the calling thread, `0` means one per available core. Every
    /// quantity [`explore`] computes is bit-identical across thread
    /// counts.
    pub threads: usize,
    /// What instrumentation this exploration records (defaults to the
    /// process-wide `wfc-obs` flag; see [`ObsOptions`]).
    pub obs: ObsOptions,
    /// Cooperative cancellation, polled at level-sync points alongside
    /// the budgets (defaults to [`CancelToken::NONE`]). Cancellation is
    /// a control signal, not a measurement: it never changes any
    /// quantity a *completed* exploration reports.
    pub cancel: CancelToken,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            budget: Budget::default(),
            threads: 1,
            obs: ObsOptions::default(),
            cancel: CancelToken::NONE,
        }
    }
}

impl ExploreOptions {
    /// This configuration with `threads` discovery workers.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// This configuration with a whole replacement [`Budget`].
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// This configuration with a `configs` budget axis.
    pub fn with_max_configs(mut self, max_configs: usize) -> Self {
        self.budget.configs = max_configs as u64;
        self
    }

    /// This configuration with a `depth` budget axis.
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.budget.depth = max_depth as u64;
        self
    }

    /// This configuration with a wall-clock deadline.
    pub fn with_wall(mut self, wall: Wall) -> Self {
        self.budget.wall = Some(wall);
        self
    }

    /// This configuration with explicit observability knobs.
    pub fn with_obs(mut self, obs: ObsOptions) -> Self {
        self.obs = obs;
        self
    }

    /// This configuration with a cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// The resolved worker count: `threads`, with `0` meaning one per
    /// available core.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// Per-object, per-invocation access maxima over all executions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessTable {
    /// `counts[obj][inv]` is the maximum number of times `inv` is invoked
    /// on object `obj` along any execution.
    counts: Vec<Vec<u32>>,
    /// `write_totals[obj]` is the maximum number of `write*` invocations
    /// on object `obj` along any *single* execution, all write values
    /// combined. At most — and often below — the sum of the per-write
    /// entries of `counts[obj]`, which take their maxima on different
    /// executions.
    write_totals: Vec<u32>,
}

impl AccessTable {
    /// Maximum invocations of `inv` on object `obj` in any execution.
    pub fn max_for(&self, obj: usize, inv: usize) -> u32 {
        self.counts[obj][inv]
    }

    /// An upper bound on total accesses of `obj` in any execution — the
    /// sum of the per-invocation maxima.
    pub fn upper_bound_for(&self, obj: usize) -> u32 {
        self.counts[obj].iter().sum()
    }

    /// The paper's `w_b`, exactly: the maximum number of writes (any
    /// value) to `obj` along any single execution.
    pub fn max_writes_for(&self, obj: usize) -> u32 {
        self.write_totals[obj]
    }

    /// Number of objects covered.
    pub fn objects(&self) -> usize {
        self.counts.len()
    }
}

/// The result of exhaustively exploring a [`System`].
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Number of distinct configurations (nodes of the merged graph).
    pub configs: usize,
    /// Number of edges (single low-level operations).
    pub edges: usize,
    /// Number of distinct terminal configurations.
    pub terminals: usize,
    /// Length of the longest execution: the paper's tree depth `d`.
    pub depth: usize,
    /// `per_process_steps[p]` is the maximum number of shared-memory
    /// steps process `p` takes in any execution — the constant behind
    /// wait-freedom ("a finite number of its own steps", Section 1).
    pub per_process_steps: Vec<u32>,
    /// All decision vectors observed at terminal configurations.
    pub decisions: BTreeSet<Vec<i64>>,
    /// Per-object, per-invocation access bounds.
    pub access: AccessTable,
}

impl Exploration {
    /// `true` if every decision vector is constant: consensus *agreement*.
    pub fn decisions_agree(&self) -> bool {
        self.decisions
            .iter()
            .all(|v| v.windows(2).all(|w| w[0] == w[1]))
    }

    /// `true` if every decided value appears in `allowed`: consensus
    /// *validity* against the set of proposed values.
    pub fn decisions_within(&self, allowed: &[i64]) -> bool {
        self.decisions
            .iter()
            .all(|v| v.iter().all(|d| allowed.contains(d)))
    }
}

/// A concrete execution violating consensus correctness, extracted for
/// debugging: the schedule (process indices in step order) and the
/// decisions it leads to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The schedule, one process index per low-level step. For
    /// nondeterministic objects the adversary's outcome choices are
    /// implicit in the replayed run.
    pub schedule: Vec<usize>,
    /// The terminal decision vector.
    pub decisions: Vec<i64>,
    /// `true` if the vector breaks agreement, `false` if it breaks
    /// validity.
    pub disagreement: bool,
}

/// Searches for a single schedule on which `system` violates consensus
/// agreement or validity (decisions outside `allowed`), returning it for
/// inspection — the counterexample extractor behind the refutation
/// tests.
///
/// Walks the execution tree path by path (unlike [`explore`], which
/// merges), so it can reconstruct the schedule; stops at the first
/// violation.
///
/// # Errors
///
/// Returns [`ExplorerError`] on malformed programs; the search visits at
/// most `opts.budget.configs` path prefixes.
pub fn find_violation(
    system: &System,
    allowed: &[i64],
    opts: &ExploreOptions,
) -> Result<Option<Violation>, ExplorerError> {
    let init = system.initial_config()?;
    let mut visited = 0u64;
    let mut stack = vec![(init, Vec::new())];
    while let Some((cfg, schedule)) = stack.pop() {
        let progress = Progress {
            configs: visited,
            ..Progress::default()
        };
        if opts.cancel.is_cancelled() {
            progress.record();
            return Err(ExplorerError::Cancelled { progress });
        }
        // Clock reads are much costlier than the pop itself; amortize.
        if visited & 0x3FF == 0 {
            if let Some(e) = opts.budget.wall_exceeded(progress) {
                return Err(ExplorerError::Exhausted(e));
            }
        }
        visited += 1;
        if let Some(e) = opts.budget.configs_exceeded(
            visited,
            Progress {
                configs: visited,
                ..Progress::default()
            },
        ) {
            return Err(ExplorerError::Exhausted(e));
        }
        if cfg.is_terminal() {
            let decisions = cfg.decisions();
            let disagreement = decisions.windows(2).any(|w| w[0] != w[1]);
            let invalid = decisions.iter().any(|d| !allowed.contains(d));
            if disagreement || invalid {
                return Ok(Some(Violation {
                    schedule,
                    decisions,
                    disagreement,
                }));
            }
            continue;
        }
        for p in 0..system.processes() {
            for child in system.step(&cfg, p)? {
                let mut s = schedule.clone();
                s.push(p);
                stack.push((child, s));
            }
        }
    }
    Ok(None)
}

/// Exhaustively explores every interleaving of `system`.
///
/// Wait-freedom is verified as a side effect: an infinite execution exists
/// iff the configuration graph has a cycle, in which case
/// [`ExplorerError::NotWaitFree`] is returned — this is the contrapositive
/// of the paper's König-Lemma argument.
///
/// # Errors
///
/// Returns [`ExplorerError`] on malformed programs, missing ports, budget
/// exhaustion, or non-wait-freedom.
pub fn explore(system: &System, opts: &ExploreOptions) -> Result<Exploration, ExplorerError> {
    let _span = wfc_obs::span::enter_if(opts.obs.spans, "explore", String::new());
    let graph = ConfigGraph::build(system, opts)?;
    if graph.has_cycle {
        return Err(ExplorerError::NotWaitFree);
    }

    // Flattened (obj, inv) dimensions for the access table, plus one
    // extra per-object slot tracking the *total* `write*` invocations
    // along a single execution (all values combined): summing the
    // per-value write maxima afterwards would over-approximate, because
    // those maxima can come from different executions.
    let mut obj_inv_offsets = Vec::with_capacity(system.objects().len());
    let mut dims = 0usize;
    for o in system.objects() {
        obj_inv_offsets.push(dims);
        dims += o.ty().invocation_count();
    }
    let objects = system.objects().len();
    // `write_slot[slot]` is the extra accumulator fed by `slot`, if any.
    let mut write_slot: Vec<Option<usize>> = vec![None; dims];
    for (oi, o) in system.objects().iter().enumerate() {
        let ty = o.ty();
        for inv in ty.invocations() {
            if ty.invocation_name(inv).starts_with("write") {
                write_slot[obj_inv_offsets[oi] + inv.index()] = Some(dims + oi);
            }
        }
    }
    let total_dims = dims + objects;

    let procs = system.processes();
    let mut depth: Vec<u32> = vec![0; graph.len()];
    let mut access: Vec<Vec<u32>> = vec![Vec::new(); graph.len()];
    let mut steps: Vec<Vec<u32>> = vec![Vec::new(); graph.len()];
    let mut decisions = BTreeSet::new();
    let mut terminals = 0usize;

    // `post_order` is a reverse topological order on acyclic graphs, so
    // children are finalized before their parents.
    for &v in &graph.post_order {
        let kids = &graph.children[v];
        if kids.is_empty() {
            debug_assert!(
                graph.configs[v].is_terminal(),
                "only terminals lack children"
            );
            terminals += 1;
            decisions.insert(graph.configs[v].decisions());
            access[v] = vec![0; total_dims];
            steps[v] = vec![0; procs];
            continue;
        }
        let mut d = 0u32;
        let mut acc = vec![0u32; total_dims];
        let mut st = vec![0u32; procs];
        let cfg = &graph.configs[v];
        for &(p, c) in kids {
            d = d.max(depth[c] + 1);
            let a = system
                .pending_access(cfg, p)?
                .expect("undecided process has a pending access");
            let slot = obj_inv_offsets[a.obj] + a.inv.index();
            let wslot = write_slot[slot];
            for (k, cell) in acc.iter_mut().enumerate() {
                let child_val = access[c][k] + u32::from(k == slot || Some(k) == wslot);
                *cell = (*cell).max(child_val);
            }
            for (q, cell) in st.iter_mut().enumerate() {
                let child_val = steps[c][q] + u32::from(q == p);
                *cell = (*cell).max(child_val);
            }
        }
        depth[v] = d;
        access[v] = acc;
        steps[v] = st;
    }

    if opts.obs.metrics {
        let reg = wfc_obs::metrics::Registry::global();
        reg.histogram("explorer.tree_depth")
            .record(depth[graph.root] as u64);
        reg.counter("explorer.terminals").add(terminals as u64);
    }

    if let Some(e) = opts.budget.depth_exceeded(
        depth[graph.root] as u64,
        Progress {
            configs: graph.len() as u64,
            depth: depth[graph.root] as u64,
            ..Progress::default()
        },
    ) {
        return Err(ExplorerError::Exhausted(e));
    }

    let per_object = system
        .objects()
        .iter()
        .enumerate()
        .map(|(oi, o)| {
            let base = obj_inv_offsets[oi];
            (0..o.ty().invocation_count())
                .map(|i| access[graph.root][base + i])
                .collect()
        })
        .collect();
    let write_totals = (0..objects)
        .map(|oi| access[graph.root][dims + oi])
        .collect();

    Ok(Exploration {
        configs: graph.len(),
        edges: graph.edges,
        terminals,
        depth: depth[graph.root] as usize,
        per_process_steps: steps[graph.root].clone(),
        decisions,
        access: AccessTable {
            counts: per_object,
            write_totals,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Operand, ProgramBuilder};
    use crate::system::ObjectInstance;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use wfc_spec::canonical;
    use wfc_spec::control::Resource;

    /// Unwraps an [`ExplorerError::Exhausted`] into its
    /// `(resource, budget, used)` triple for exact assertions.
    fn exhausted(e: ExplorerError) -> (Resource, u64, u64) {
        match e {
            ExplorerError::Exhausted(e) => (e.resource, e.budget, e.used),
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    /// Two processes each test-and-set once and decide the response.
    fn tas_race() -> System {
        let tas = Arc::new(canonical::test_and_set(2));
        let init = tas.state_id("unset").unwrap();
        let tas_inv = tas.invocation_id("test_and_set").unwrap();
        let obj = ObjectInstance::identity_ports(tas, init, 2);
        let mk = || {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            b.invoke(0_i64, Operand::Const(tas_inv.index() as i64), Some(r));
            b.ret(r);
            b.build().unwrap()
        };
        System::new(vec![obj], vec![mk(), mk()])
    }

    #[test]
    fn tas_race_explores_both_orders() {
        let e = explore(&tas_race(), &ExploreOptions::default()).unwrap();
        assert_eq!(e.depth, 2, "each of two processes takes one step");
        // Either process may win.
        assert!(e.decisions.contains(&vec![0, 1]));
        assert!(e.decisions.contains(&vec![1, 0]));
        assert_eq!(e.decisions.len(), 2);
        assert!(!e.decisions_agree(), "raw TAS responses disagree");
        assert!(e.decisions_within(&[0, 1]));
        // TAS object: invoked at most twice in any execution.
        assert_eq!(e.access.max_for(0, 0), 2);
        // Each process takes exactly one shared step in every execution.
        assert_eq!(e.per_process_steps, vec![1, 1]);
    }

    /// A process spinning on a register forever: not wait-free.
    #[test]
    fn spin_loop_is_not_wait_free() {
        let reg = Arc::new(canonical::boolean_register(2));
        let init = reg.state_id("v0").unwrap();
        let read = reg.invocation_id("read").unwrap();
        let r1 = reg.response_id("1").unwrap();
        let obj = ObjectInstance::identity_ports(reg, init, 1);
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        let t = b.var("t");
        let top = b.fresh_label();
        b.bind(top);
        b.invoke(0_i64, Operand::Const(read.index() as i64), Some(r));
        b.compute(t, r, crate::program::BinOp::Eq, r1.index() as i64);
        b.jump_if_zero(t, top); // loop until the register reads 1 (never)
        b.ret(r);
        let sys = System::new(vec![obj], vec![b.build().unwrap()]);
        assert_eq!(
            explore(&sys, &ExploreOptions::default()).unwrap_err(),
            ExplorerError::NotWaitFree
        );
    }

    /// Nondeterministic one-use bit: DEAD reads branch.
    #[test]
    fn nondeterminism_multiplies_decisions() {
        let oub = Arc::new(canonical::one_use_bit());
        let dead = oub.state_id("DEAD").unwrap();
        let read = oub.invocation_id("read").unwrap();
        let obj = ObjectInstance::identity_ports(oub, dead, 1);
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        b.invoke(0_i64, Operand::Const(read.index() as i64), Some(r));
        b.ret(r);
        let sys = System::new(vec![obj], vec![b.build().unwrap()]);
        let e = explore(&sys, &ExploreOptions::default()).unwrap();
        assert_eq!(e.decisions.len(), 2, "adversary chooses the DEAD read");
    }

    #[test]
    fn cancellation_aborts_at_level_sync() {
        static FLAG: AtomicBool = AtomicBool::new(false);
        let opts = ExploreOptions::default().with_cancel(CancelToken::new(&FLAG));
        // Token unset: the run completes and matches an uncancellable one.
        let base = format!(
            "{:?}",
            explore(&tas_race(), &ExploreOptions::default()).unwrap()
        );
        assert_eq!(base, format!("{:?}", explore(&tas_race(), &opts).unwrap()));
        // Token set: both the explorer and the violation search abort.
        FLAG.store(true, Ordering::Relaxed);
        assert!(matches!(
            explore(&tas_race(), &opts).unwrap_err(),
            ExplorerError::Cancelled { .. }
        ));
        assert!(matches!(
            find_violation(&tas_race(), &[0, 1], &opts).unwrap_err(),
            ExplorerError::Cancelled { .. }
        ));
        FLAG.store(false, Ordering::Relaxed);
    }

    #[test]
    fn budget_is_enforced() {
        let e = explore(&tas_race(), &ExploreOptions::default().with_max_configs(2)).unwrap_err();
        let (resource, budget, _) = exhausted(e);
        assert_eq!((resource, budget), (Resource::Configs, 2));
    }

    #[test]
    fn budgets_fire_exactly_at_their_thresholds() {
        // The race has exactly 5 configurations and depth 2: budgets
        // equal to the true size succeed, one below fail.
        let baseline = explore(&tas_race(), &ExploreOptions::default()).unwrap();
        assert_eq!((baseline.configs, baseline.depth), (5, 2));
        for threads in [1, 4] {
            let opts = ExploreOptions::default().with_threads(threads);
            assert!(explore(&tas_race(), &opts.with_max_configs(5)).is_ok());
            // The coordinator interns children one at a time, so the
            // trip reports exactly budget + 1 — no level overshoot.
            assert_eq!(
                exhausted(explore(&tas_race(), &opts.with_max_configs(4)).unwrap_err()),
                (Resource::Configs, 4, 5)
            );
            assert!(explore(&tas_race(), &opts.with_max_depth(2)).is_ok());
            assert_eq!(
                exhausted(explore(&tas_race(), &opts.with_max_depth(1)).unwrap_err()),
                (Resource::Depth, 1, 2)
            );
        }
    }

    #[test]
    fn exact_depth_budget_catches_paths_longer_than_bfs_levels() {
        // Writer takes 2 steps, reader 3: every configuration is within
        // 5 BFS levels, but the longest execution is 5 — a depth budget
        // of 4 must fail via the post-DP check even though discovery
        // (whose levels bound only the *shortest* path to each node)
        // may not fire.
        let reg = Arc::new(canonical::boolean_register(2));
        let init = reg.state_id("v0").unwrap();
        let read = reg.invocation_id("read").unwrap().index() as i64;
        let write1 = reg.invocation_id("write1").unwrap().index() as i64;
        let obj = ObjectInstance::identity_ports(reg, init, 2);
        let writer = {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            b.invoke(0_i64, write1, Some(r));
            b.invoke(0_i64, write1, Some(r));
            b.ret(0_i64);
            b.build().unwrap()
        };
        let reader = {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            for _ in 0..3 {
                b.invoke(0_i64, read, Some(r));
            }
            b.ret(r);
            b.build().unwrap()
        };
        let sys = System::new(vec![obj], vec![writer, reader]);
        assert!(explore(&sys, &ExploreOptions::default().with_max_depth(5)).is_ok());
        assert_eq!(
            exhausted(explore(&sys, &ExploreOptions::default().with_max_depth(4)).unwrap_err()),
            (Resource::Depth, 4, 5)
        );
    }

    /// The write-bound satellite: per-value write maxima can each be
    /// attained on *different* executions, so their sum over-approximates
    /// the true per-execution write total.
    #[test]
    fn write_totals_beat_summed_per_value_maxima() {
        // One process: read the register, then write the value it saw
        // twice — every execution does either two write0s or two write1s,
        // never both.
        let reg = Arc::new(canonical::boolean_register(2));
        let init = reg.state_id("v0").unwrap();
        let read = reg.invocation_id("read").unwrap().index() as i64;
        let w0 = reg.invocation_id("write0").unwrap().index() as i64;
        let w1 = reg.invocation_id("write1").unwrap().index() as i64;
        let r1 = reg.response_id("1").unwrap().index() as i64;
        let obj = ObjectInstance::identity_ports(Arc::clone(&reg), init, 2);
        let chooser = {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            let t = b.var("t");
            let zeros = b.fresh_label();
            b.invoke(0_i64, read, Some(r));
            b.compute(t, r, crate::program::BinOp::Eq, r1);
            b.jump_if_zero(t, zeros); // saw 0 → write 0s; fall through → write 1s
            b.invoke(0_i64, w1, None);
            b.invoke(0_i64, w1, None);
            b.ret(1_i64);
            b.bind(zeros);
            b.invoke(0_i64, w0, None);
            b.invoke(0_i64, w0, None);
            b.ret(0_i64);
            b.build().unwrap()
        };
        let flipper = {
            let mut b = ProgramBuilder::new();
            b.invoke(0_i64, w1, None);
            b.ret(1_i64);
            b.build().unwrap()
        };
        let sys = System::new(vec![obj], vec![chooser, flipper]);
        let e = explore(&sys, &ExploreOptions::default()).unwrap();
        let w0_ix = reg.invocation_id("write0").unwrap().index();
        let w1_ix = reg.invocation_id("write1").unwrap().index();
        // Some execution does two write0s, some does two write1s (plus
        // the flipper's write1)...
        assert_eq!(e.access.max_for(0, w0_ix), 2);
        assert_eq!(e.access.max_for(0, w1_ix), 3);
        // ...but no single execution does all five writes.
        assert!(
            e.access.max_writes_for(0) < e.access.max_for(0, w0_ix) + e.access.max_for(0, w1_ix)
        );
        assert_eq!(e.access.max_writes_for(0), 3);
    }

    #[test]
    fn no_step_system_is_terminal_at_once() {
        // A program that decides locally without shared access.
        let reg = Arc::new(canonical::boolean_register(2));
        let init = reg.state_id("v0").unwrap();
        let obj = ObjectInstance::identity_ports(reg, init, 1);
        let mut b = ProgramBuilder::new();
        b.ret(42_i64);
        let sys = System::new(vec![obj], vec![b.build().unwrap()]);
        let e = explore(&sys, &ExploreOptions::default()).unwrap();
        assert_eq!(e.depth, 0);
        assert_eq!(e.configs, 1);
        assert_eq!(e.decisions.iter().next().unwrap(), &vec![42]);
    }

    #[test]
    fn find_violation_extracts_a_schedule() {
        // The raw TAS race "disagrees" by design; the extractor must
        // return a 2-step schedule ending in distinct decisions.
        let v = find_violation(&tas_race(), &[0, 1], &ExploreOptions::default())
            .unwrap()
            .expect("the race always disagrees");
        assert_eq!(v.schedule.len(), 2);
        assert!(v.disagreement);
        assert_ne!(v.decisions[0], v.decisions[1]);
    }

    #[test]
    fn find_violation_reports_none_for_correct_systems() {
        // A system where both processes decide the constant 7.
        let reg = Arc::new(canonical::boolean_register(2));
        let init = reg.state_id("v0").unwrap();
        let obj = ObjectInstance::identity_ports(reg, init, 2);
        let mk = || {
            let mut b = ProgramBuilder::new();
            b.ret(7_i64);
            b.build().unwrap()
        };
        let sys = System::new(vec![obj], vec![mk(), mk()]);
        assert_eq!(
            find_violation(&sys, &[7], &ExploreOptions::default()).unwrap(),
            None
        );
    }

    #[test]
    fn find_violation_flags_validity() {
        let reg = Arc::new(canonical::boolean_register(2));
        let init = reg.state_id("v0").unwrap();
        let obj = ObjectInstance::identity_ports(reg, init, 1);
        let mut b = ProgramBuilder::new();
        b.ret(9_i64);
        let sys = System::new(vec![obj], vec![b.build().unwrap()]);
        let v = find_violation(&sys, &[0, 1], &ExploreOptions::default())
            .unwrap()
            .expect("9 is not a proposed value");
        assert!(!v.disagreement, "single process cannot disagree");
        assert_eq!(v.decisions, vec![9]);
    }

    /// Access bounds separate reads from writes per object.
    #[test]
    fn access_bounds_split_by_invocation() {
        let reg = Arc::new(canonical::boolean_register(2));
        let init = reg.state_id("v0").unwrap();
        let read = reg.invocation_id("read").unwrap().index() as i64;
        let write1 = reg.invocation_id("write1").unwrap().index() as i64;
        let obj = ObjectInstance::identity_ports(reg.clone(), init, 2);
        // Process 0 writes twice; process 1 reads three times.
        let writer = {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            b.invoke(0_i64, write1, Some(r));
            b.invoke(0_i64, write1, Some(r));
            b.ret(0_i64);
            b.build().unwrap()
        };
        let reader = {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            for _ in 0..3 {
                b.invoke(0_i64, read, Some(r));
            }
            b.ret(r);
            b.build().unwrap()
        };
        let sys = System::new(vec![obj], vec![writer, reader]);
        let e = explore(&sys, &ExploreOptions::default()).unwrap();
        let read_ix = reg.invocation_id("read").unwrap().index();
        let w1_ix = reg.invocation_id("write1").unwrap().index();
        assert_eq!(e.access.max_for(0, read_ix), 3);
        assert_eq!(e.access.max_for(0, w1_ix), 2);
        assert_eq!(e.depth, 5);
    }
}
