//! The configuration graph of a system.
//!
//! The paper reasons about executions as trees (Section 4.2); the
//! [`ConfigGraph`] is the same object with identical subtrees merged:
//! nodes are configurations, and an edge `(p, c)` from `v` means process
//! `p`'s next low-level operation moves the system from `v` to `c`.
//! Depth, access bounds, decision sets and valency are all computed over
//! this graph.

use std::collections::HashMap;

use crate::error::ExplorerError;
use crate::explore::ExploreOptions;
use crate::system::{Config, System};

/// The reachable configuration graph of a [`System`].
#[derive(Clone, Debug)]
pub struct ConfigGraph {
    /// All distinct configurations, indexed by node id.
    pub configs: Vec<Config>,
    /// `children[v]` lists `(process, child)` edges out of `v`.
    pub children: Vec<Vec<(usize, usize)>>,
    /// The initial configuration's node id.
    pub root: usize,
    /// Total number of edges.
    pub edges: usize,
    /// `true` if the graph contains a cycle — i.e. the system admits an
    /// infinite execution and is **not** wait-free.
    pub has_cycle: bool,
    /// A DFS post-order of all nodes. When `has_cycle` is `false`, this is
    /// a reverse topological order suitable for dynamic programming.
    pub post_order: Vec<usize>,
}

impl ConfigGraph {
    /// Builds the reachable configuration graph of `system`.
    ///
    /// Cycles are recorded, not rejected; callers needing wait-freedom
    /// should inspect [`ConfigGraph::has_cycle`].
    ///
    /// # Errors
    ///
    /// Returns [`ExplorerError`] on malformed programs or when the number
    /// of configurations exceeds `opts.max_configs`.
    pub fn build(system: &System, opts: &ExploreOptions) -> Result<ConfigGraph, ExplorerError> {
        let init = system.initial_config()?;
        let mut ids: HashMap<Config, usize> = HashMap::new();
        let mut configs: Vec<Config> = Vec::new();
        let mut children: Vec<Option<Vec<(usize, usize)>>> = Vec::new();

        fn intern(
            c: Config,
            ids: &mut HashMap<Config, usize>,
            configs: &mut Vec<Config>,
            children: &mut Vec<Option<Vec<(usize, usize)>>>,
        ) -> usize {
            if let Some(&id) = ids.get(&c) {
                id
            } else {
                let id = configs.len();
                ids.insert(c.clone(), id);
                configs.push(c);
                children.push(None);
                id
            }
        }

        let root = intern(init, &mut ids, &mut configs, &mut children);

        // Iterative DFS with colours: 0 white, 1 grey, 2 black.
        let mut colour: Vec<u8> = vec![1];
        let mut post_order: Vec<usize> = Vec::new();
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        let mut edges = 0usize;
        let mut has_cycle = false;

        while let Some(&(v, next_child)) = stack.last() {
            if children[v].is_none() {
                let mut kids = Vec::new();
                let cfg = configs[v].clone();
                for p in 0..system.processes() {
                    for child_cfg in system.step(&cfg, p)? {
                        let id = intern(child_cfg, &mut ids, &mut configs, &mut children);
                        if id >= colour.len() {
                            colour.resize(id + 1, 0);
                        }
                        kids.push((p, id));
                    }
                }
                if configs.len() > opts.max_configs {
                    return Err(ExplorerError::ConfigBudgetExceeded {
                        budget: opts.max_configs,
                    });
                }
                edges += kids.len();
                children[v] = Some(kids);
            }
            let kids = children[v].as_ref().expect("expanded above");
            if next_child < kids.len() {
                let (_, c) = kids[next_child];
                stack.last_mut().expect("non-empty").1 += 1;
                match colour[c] {
                    0 => {
                        colour[c] = 1;
                        stack.push((c, 0));
                    }
                    1 => has_cycle = true,
                    _ => {}
                }
            } else {
                colour[v] = 2;
                post_order.push(v);
                stack.pop();
            }
        }

        Ok(ConfigGraph {
            configs,
            children: children
                .into_iter()
                .map(|c| c.expect("all reachable nodes expanded"))
                .collect(),
            root,
            edges,
            has_cycle,
            post_order,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// `true` if the graph has no nodes (never: the root always exists).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Node ids of terminal configurations (all processes decided).
    pub fn terminals(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).filter(|&v| self.configs[v].is_terminal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Operand, ProgramBuilder};
    use crate::system::ObjectInstance;
    use std::sync::Arc;
    use wfc_spec::canonical;

    #[test]
    fn graph_of_two_step_race_is_a_diamond_plus_tails() {
        let tas = Arc::new(canonical::test_and_set(2));
        let init = tas.state_id("unset").unwrap();
        let tas_inv = tas.invocation_id("test_and_set").unwrap();
        let obj = ObjectInstance::identity_ports(tas, init, 2);
        let mk = || {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            b.invoke(0_i64, Operand::Const(tas_inv.index() as i64), Some(r));
            b.ret(r);
            b.build().unwrap()
        };
        let sys = System::new(vec![obj], vec![mk(), mk()]);
        let g = ConfigGraph::build(&sys, &ExploreOptions::default()).unwrap();
        assert!(!g.has_cycle);
        // root, two intermediate, two terminals (decisions differ by winner).
        assert_eq!(g.len(), 5);
        assert_eq!(g.terminals().count(), 2);
        assert_eq!(g.post_order.len(), g.len());
        // Post-order ends at the root.
        assert_eq!(*g.post_order.last().unwrap(), g.root);
    }

    #[test]
    fn cycle_is_flagged_not_fatal() {
        let reg = Arc::new(canonical::boolean_register(2));
        let init = reg.state_id("v0").unwrap();
        let read = reg.invocation_id("read").unwrap();
        let r1 = reg.response_id("1").unwrap();
        let obj = ObjectInstance::identity_ports(reg, init, 1);
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        let t = b.var("t");
        let top = b.fresh_label();
        b.bind(top);
        b.invoke(0_i64, Operand::Const(read.index() as i64), Some(r));
        b.compute(t, r, crate::program::BinOp::Eq, r1.index() as i64);
        b.jump_if_zero(t, top);
        b.ret(r);
        let sys = System::new(vec![obj], vec![b.build().unwrap()]);
        let g = ConfigGraph::build(&sys, &ExploreOptions::default()).unwrap();
        assert!(g.has_cycle);
        assert_eq!(g.terminals().count(), 0);
    }
}
