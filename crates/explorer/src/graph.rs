//! The configuration graph of a system.
//!
//! The paper reasons about executions as trees (Section 4.2); the
//! [`ConfigGraph`] is the same object with identical subtrees merged:
//! nodes are configurations, and an edge `(p, c)` from `v` means process
//! `p`'s next low-level operation moves the system from `v` to `c`.
//! Depth, access bounds, decision sets and valency are all computed over
//! this graph.
//!
//! Discovery is a level-synchronised breadth-first search; with
//! [`ExploreOptions::threads`] > 1 each frontier is sharded across a
//! scoped thread pool. Workers only *expand* configurations — all
//! interning happens on the coordinator, in frontier order, after the
//! level joins. Node numbering is therefore identical at every thread
//! count (not merely the node *set*), and the configs budget is exact:
//! the build aborts the moment the `budget.configs + 1`-st distinct
//! configuration appears, with no end-of-level overshoot. Cycle
//! detection and the post-order are computed afterwards by a cheap
//! sequential pass over the already-built adjacency, which touches no
//! program state.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, DefaultHasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use wfc_obs::metrics::{Counter, Gauge, Histogram, Registry};
use wfc_spec::control::Progress;

use crate::error::ExplorerError;
use crate::explore::ExploreOptions;
use crate::system::{Config, System};

/// The reachable configuration graph of a [`System`].
#[derive(Clone, Debug)]
pub struct ConfigGraph {
    /// All distinct configurations, indexed by node id.
    pub configs: Vec<Config>,
    /// `children[v]` lists `(process, child)` edges out of `v`.
    pub children: Vec<Vec<(usize, usize)>>,
    /// The initial configuration's node id.
    pub root: usize,
    /// Total number of edges.
    pub edges: usize,
    /// `true` if the graph contains a cycle — i.e. the system admits an
    /// infinite execution and is **not** wait-free.
    pub has_cycle: bool,
    /// A DFS post-order of all nodes. When `has_cycle` is `false`, this is
    /// a reverse topological order suitable for dynamic programming.
    pub post_order: Vec<usize>,
}

/// Frontiers smaller than this are expanded inline even when
/// `threads > 1`: per-level thread spawns would dominate the work.
const PARALLEL_FRONTIER_MIN: usize = 64;

/// What one worker contributes to a frontier level: for each claimed
/// frontier position, the raw `(process, child configuration)` pairs it
/// expands to, plus the minimal error encountered (keyed so the choice
/// is independent of scheduling). Nothing is interned here — the
/// coordinator does that in frontier order.
struct LevelPart {
    children: Vec<(usize, Vec<(usize, Config)>)>,
    error: Option<(String, usize, ExplorerError)>,
}

fn merge_error(
    slot: &mut Option<(String, usize, ExplorerError)>,
    candidate: (String, usize, ExplorerError),
) {
    let replace = match slot {
        None => true,
        Some((key, p, _)) => (candidate.0.as_str(), candidate.1) < (key.as_str(), *p),
    };
    if replace {
        *slot = Some(candidate);
    }
}

/// Expands the slice of `frontier` this worker claims via `next`. Pure
/// expansion: the result depends only on which positions were claimed,
/// never on scheduling, so any partition of a level across workers
/// yields the same merged level.
fn expand_worker(
    system: &System,
    configs: &[Config],
    frontier: &[usize],
    next: &AtomicUsize,
) -> LevelPart {
    let mut part = LevelPart {
        children: Vec::new(),
        error: None,
    };
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= frontier.len() {
            return part;
        }
        let cfg = &configs[frontier[i]];
        let mut kids = Vec::new();
        for p in 0..system.processes() {
            match system.step(cfg, p) {
                Ok(steps) => kids.extend(steps.into_iter().map(|child| (p, child))),
                Err(e) => merge_error(&mut part.error, (format!("{e:?}"), p, e)),
            }
        }
        part.children.push((i, kids));
    }
}

/// Handles into the global registry held for the duration of one build,
/// so per-level recording is a handful of lock-free atomic ops (the
/// registry mutex is taken once, up front). Only constructed when
/// `opts.obs.metrics` is set — a disabled build never touches the
/// registry.
struct BuildMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    frontier: Arc<Histogram>,
    level_ns: Arc<Histogram>,
    max_level: Arc<Gauge>,
}

impl BuildMetrics {
    fn new() -> BuildMetrics {
        let reg = Registry::global();
        BuildMetrics {
            hits: reg.counter("explorer.interner.hits"),
            misses: reg.counter("explorer.interner.misses"),
            frontier: reg.histogram("explorer.bfs.frontier"),
            level_ns: reg.histogram("explorer.bfs.level_ns"),
            max_level: reg.gauge("explorer.bfs.max_level"),
        }
    }
}

impl ConfigGraph {
    /// Builds the reachable configuration graph of `system`.
    ///
    /// Cycles are recorded, not rejected; callers needing wait-freedom
    /// should inspect [`ConfigGraph::has_cycle`].
    ///
    /// # Errors
    ///
    /// Returns [`ExplorerError`] on malformed programs,
    /// [`ExplorerError::Exhausted`] when the control-plane budget trips
    /// (the configs axis is exact — the reported usage is always
    /// `budget + 1`; the depth axis fires when the breadth-first level
    /// count exceeds `opts.budget.depth`, and the BFS level of a node
    /// never exceeds its execution depth, so this fires only on systems
    /// genuinely deeper than the budget), or
    /// [`ExplorerError::Cancelled`] once `opts.cancel` is observed at a
    /// level-sync point.
    pub fn build(system: &System, opts: &ExploreOptions) -> Result<ConfigGraph, ExplorerError> {
        let init = system.initial_config()?;
        let threads = opts.effective_threads();
        let metrics = opts.obs.metrics.then(BuildMetrics::new);

        let mut map: HashMap<Config, usize, BuildHasherDefault<DefaultHasher>> = HashMap::default();
        let mut configs: Vec<Config> = Vec::new();
        let root = 0usize;
        map.insert(init.clone(), root);
        configs.push(init);
        if let Some(m) = &metrics {
            m.misses.add(1); // the root's intern
        }

        let mut frontier: Vec<usize> = vec![root];
        let mut adjacency: Vec<(usize, Vec<(usize, usize)>)> = Vec::new();
        let mut edges = 0usize;
        let mut level = 0usize;

        while !frontier.is_empty() {
            let progress = Progress {
                configs: configs.len() as u64,
                depth: level as u64,
                ..Progress::default()
            };
            if opts.cancel.is_cancelled() {
                progress.record();
                return Err(ExplorerError::Cancelled { progress });
            }
            if let Some(e) = opts.budget.wall_exceeded(progress) {
                return Err(ExplorerError::Exhausted(e));
            }
            if let Some(e) = opts.budget.depth_exceeded(level as u64, progress) {
                return Err(ExplorerError::Exhausted(e));
            }
            let _level_span =
                wfc_obs::span::enter_lazy(opts.obs.spans, "bfs_level", || format!("level={level}"));
            let level_start = metrics.as_ref().map(|_| Instant::now());
            let next = AtomicUsize::new(0);
            // Spawning workers costs more than expanding a small frontier;
            // expand those levels inline. This is exactly the `threads = 1`
            // path, so results are unchanged — parallel output is invariant
            // under how each level was scheduled.
            let level_workers = if frontier.len() < PARALLEL_FRONTIER_MIN {
                1
            } else {
                threads
            };
            let parts: Vec<LevelPart> = if level_workers <= 1 {
                vec![expand_worker(system, &configs, &frontier, &next)]
            } else {
                std::thread::scope(|s| {
                    let workers: Vec<_> = (0..level_workers)
                        .map(|_| s.spawn(|| expand_worker(system, &configs, &frontier, &next)))
                        .collect();
                    workers
                        .into_iter()
                        .map(|w| w.join().expect("worker panicked"))
                        .collect()
                })
            };

            // Reassemble the level in frontier order: slot the expansions
            // by frontier position, surface the (deterministically
            // merged) error first, then intern on this thread.
            let mut error: Option<(String, usize, ExplorerError)> = None;
            let mut slots: Vec<Option<Vec<(usize, Config)>>> =
                (0..frontier.len()).map(|_| None).collect();
            for part in parts {
                for (i, kids) in part.children {
                    slots[i] = Some(kids);
                }
                if let Some(e) = part.error {
                    merge_error(&mut error, e);
                }
            }
            if let Some((_, _, e)) = error {
                return Err(e);
            }

            let mut next_frontier = Vec::new();
            let mut level_edges = 0usize;
            for (i, slot) in slots.into_iter().enumerate() {
                let kids = slot.expect("every frontier position was expanded");
                let mut kid_ids = Vec::with_capacity(kids.len());
                for (p, child) in kids {
                    level_edges += 1;
                    let id = match map.get(&child) {
                        Some(&id) => id,
                        None => {
                            let used = configs.len() as u64 + 1;
                            if let Some(e) = opts.budget.configs_exceeded(
                                used,
                                Progress {
                                    configs: used,
                                    depth: level as u64,
                                    ..Progress::default()
                                },
                            ) {
                                return Err(ExplorerError::Exhausted(e));
                            }
                            let id = configs.len();
                            map.insert(child.clone(), id);
                            configs.push(child);
                            next_frontier.push(id);
                            id
                        }
                    };
                    kid_ids.push((p, id));
                }
                adjacency.push((frontier[i], kid_ids));
            }
            edges += level_edges;
            if let Some(m) = &metrics {
                // Every edge is one intern lookup; the lookups that did
                // not discover a new node were hits.
                m.frontier.record(frontier.len() as u64);
                m.misses.add(next_frontier.len() as u64);
                m.hits.add((level_edges - next_frontier.len()) as u64);
                m.max_level.record_max(level as i64);
                if let Some(t0) = level_start {
                    m.level_ns.record(t0.elapsed().as_nanos() as u64);
                }
            }
            frontier = next_frontier;
            level += 1;
        }

        if opts.obs.metrics {
            let reg = Registry::global();
            reg.counter("explorer.configs").add(configs.len() as u64);
            reg.counter("explorer.edges").add(edges as u64);
        }

        let mut children: Vec<Vec<(usize, usize)>> = vec![Vec::new(); configs.len()];
        for (v, kids) in adjacency {
            children[v] = kids;
        }

        // Cycle detection + post-order: sequential iterative DFS with
        // colours (0 white, 1 grey, 2 black) over the finished adjacency.
        let mut colour: Vec<u8> = vec![0; configs.len()];
        let mut post_order: Vec<usize> = Vec::with_capacity(configs.len());
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        colour[root] = 1;
        let mut has_cycle = false;
        while let Some(&(v, next_child)) = stack.last() {
            let kids = &children[v];
            if next_child < kids.len() {
                let (_, c) = kids[next_child];
                stack.last_mut().expect("non-empty").1 += 1;
                match colour[c] {
                    0 => {
                        colour[c] = 1;
                        stack.push((c, 0));
                    }
                    1 => has_cycle = true,
                    _ => {}
                }
            } else {
                colour[v] = 2;
                post_order.push(v);
                stack.pop();
            }
        }

        Ok(ConfigGraph {
            configs,
            children,
            root,
            edges,
            has_cycle,
            post_order,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// `true` if the graph has no nodes (never: the root always exists).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Node ids of terminal configurations (all processes decided).
    pub fn terminals(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).filter(|&v| self.configs[v].is_terminal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Operand, ProgramBuilder};
    use crate::system::ObjectInstance;
    use std::sync::Arc;
    use wfc_spec::canonical;

    #[test]
    fn graph_of_two_step_race_is_a_diamond_plus_tails() {
        let tas = Arc::new(canonical::test_and_set(2));
        let init = tas.state_id("unset").unwrap();
        let tas_inv = tas.invocation_id("test_and_set").unwrap();
        let obj = ObjectInstance::identity_ports(tas, init, 2);
        let mk = || {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            b.invoke(0_i64, Operand::Const(tas_inv.index() as i64), Some(r));
            b.ret(r);
            b.build().unwrap()
        };
        let sys = System::new(vec![obj], vec![mk(), mk()]);
        let g = ConfigGraph::build(&sys, &ExploreOptions::default()).unwrap();
        assert!(!g.has_cycle);
        // root, two intermediate, two terminals (decisions differ by winner).
        assert_eq!(g.len(), 5);
        assert_eq!(g.terminals().count(), 2);
        assert_eq!(g.post_order.len(), g.len());
        // Post-order ends at the root.
        assert_eq!(*g.post_order.last().unwrap(), g.root);
    }

    #[test]
    fn cycle_is_flagged_not_fatal() {
        let reg = Arc::new(canonical::boolean_register(2));
        let init = reg.state_id("v0").unwrap();
        let read = reg.invocation_id("read").unwrap();
        let r1 = reg.response_id("1").unwrap();
        let obj = ObjectInstance::identity_ports(reg, init, 1);
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        let t = b.var("t");
        let top = b.fresh_label();
        b.bind(top);
        b.invoke(0_i64, Operand::Const(read.index() as i64), Some(r));
        b.compute(t, r, crate::program::BinOp::Eq, r1.index() as i64);
        b.jump_if_zero(t, top);
        b.ret(r);
        let sys = System::new(vec![obj], vec![b.build().unwrap()]);
        let g = ConfigGraph::build(&sys, &ExploreOptions::default()).unwrap();
        assert!(g.has_cycle);
        assert_eq!(g.terminals().count(), 0);
    }

    #[test]
    fn parallel_build_is_bit_identical_to_sequential() {
        let tas = Arc::new(canonical::test_and_set(2));
        let init = tas.state_id("unset").unwrap();
        let tas_inv = tas.invocation_id("test_and_set").unwrap();
        let obj = ObjectInstance::identity_ports(tas, init, 2);
        let mk = || {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            b.invoke(0_i64, Operand::Const(tas_inv.index() as i64), Some(r));
            b.ret(r);
            b.build().unwrap()
        };
        let sys = System::new(vec![obj], vec![mk(), mk()]);
        let seq = ConfigGraph::build(&sys, &ExploreOptions::default()).unwrap();
        for threads in [2, 4, 8] {
            let par =
                ConfigGraph::build(&sys, &ExploreOptions::default().with_threads(threads)).unwrap();
            // Coordinator-side interning makes even the node *numbering*
            // thread-invariant, so whole graphs compare equal.
            assert_eq!(format!("{par:?}"), format!("{seq:?}"));
        }
    }
}
