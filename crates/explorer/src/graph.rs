//! The configuration graph of a system.
//!
//! The paper reasons about executions as trees (Section 4.2); the
//! [`ConfigGraph`] is the same object with identical subtrees merged:
//! nodes are configurations, and an edge `(p, c)` from `v` means process
//! `p`'s next low-level operation moves the system from `v` to `c`.
//! Depth, access bounds, decision sets and valency are all computed over
//! this graph.
//!
//! Discovery is a level-synchronised breadth-first search over a
//! lock-striped hash-consed configuration table; with
//! [`ExploreOptions::threads`] > 1 each frontier is sharded across a
//! scoped thread pool. Node *numbering* may then depend on the thread
//! count, but the set of nodes, the edge multiset, depth, access bounds
//! and decision sets are all invariant — every quantity
//! [`explore`](crate::explore) derives is bit-identical to a
//! single-threaded run. Cycle detection and the post-order are computed
//! afterwards by a cheap sequential pass over the already-built
//! adjacency, which touches no program state.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use wfc_obs::metrics::{Counter, Gauge, Histogram, Registry};

use crate::error::{BudgetKind, ExplorerError};
use crate::explore::ExploreOptions;
use crate::system::{Config, System};

/// The reachable configuration graph of a [`System`].
#[derive(Clone, Debug)]
pub struct ConfigGraph {
    /// All distinct configurations, indexed by node id.
    pub configs: Vec<Config>,
    /// `children[v]` lists `(process, child)` edges out of `v`.
    pub children: Vec<Vec<(usize, usize)>>,
    /// The initial configuration's node id.
    pub root: usize,
    /// Total number of edges.
    pub edges: usize,
    /// `true` if the graph contains a cycle — i.e. the system admits an
    /// infinite execution and is **not** wait-free.
    pub has_cycle: bool,
    /// A DFS post-order of all nodes. When `has_cycle` is `false`, this is
    /// a reverse topological order suitable for dynamic programming.
    pub post_order: Vec<usize>,
}

/// Frontiers smaller than this are expanded inline even when
/// `threads > 1`: per-level thread spawns would dominate the work.
const PARALLEL_FRONTIER_MIN: usize = 64;

/// Deterministic (fixed-key) hash used both for stripe selection and
/// the intern maps themselves.
fn config_hash(c: &Config) -> u64 {
    let mut h = DefaultHasher::new();
    c.hash(&mut h);
    h.finish()
}

/// A lock-striped hash-consed configuration table: configurations map to
/// dense node ids, allocated from a shared atomic counter. Stripes are
/// selected by configuration hash, so concurrent interning of distinct
/// configurations rarely contends.
struct StripedInterner {
    stripes: Vec<Mutex<HashMap<Config, usize, BuildHasherDefault<DefaultHasher>>>>,
    counter: AtomicUsize,
    mask: usize,
}

impl StripedInterner {
    fn new(threads: usize) -> Self {
        let stripes = (threads * 8).next_power_of_two().max(1);
        StripedInterner {
            stripes: (0..stripes)
                .map(|_| Mutex::new(HashMap::default()))
                .collect(),
            counter: AtomicUsize::new(0),
            mask: stripes - 1,
        }
    }

    /// Returns the node id of `c` and whether this call created it.
    fn intern(&self, c: &Config) -> (usize, bool) {
        let stripe = &self.stripes[(config_hash(c) as usize) & self.mask];
        let mut map = stripe.lock().expect("interner stripe poisoned");
        if let Some(&id) = map.get(c) {
            (id, false)
        } else {
            let id = self.counter.fetch_add(1, Ordering::Relaxed);
            map.insert(c.clone(), id);
            (id, true)
        }
    }

    fn len(&self) -> usize {
        self.counter.load(Ordering::Relaxed)
    }

    /// Consumes the table into a dense id-indexed configuration vector.
    fn into_configs(self) -> Vec<Config> {
        let mut out: Vec<Option<Config>> = vec![None; self.len()];
        for stripe in self.stripes {
            for (cfg, id) in stripe.into_inner().expect("interner stripe poisoned") {
                out[id] = Some(cfg);
            }
        }
        out.into_iter()
            .map(|c| c.expect("every allocated id was inserted"))
            .collect()
    }
}

/// What one worker contributes to a frontier level: expanded adjacency,
/// newly discovered nodes, and the minimal error encountered (keyed so
/// the choice is independent of scheduling).
struct LevelPart {
    children: Vec<(usize, Vec<(usize, usize)>)>,
    discovered: Vec<(usize, Config)>,
    error: Option<(String, usize, ExplorerError)>,
}

fn merge_error(
    slot: &mut Option<(String, usize, ExplorerError)>,
    candidate: (String, usize, ExplorerError),
) {
    let replace = match slot {
        None => true,
        Some((key, p, _)) => (candidate.0.as_str(), candidate.1) < (key.as_str(), *p),
    };
    if replace {
        *slot = Some(candidate);
    }
}

/// Expands the slice of `frontier` this worker claims via `next`,
/// interning children into the shared table.
///
/// Workers always finish their whole level: the configs budget is
/// checked only at the level-sync point in [`ConfigGraph::build`], so
/// the interned total a budget error reports is a schedule-independent
/// quantity (the cost is an overshoot of at most one level's worth of
/// configurations past `max_configs`).
fn expand_worker(
    system: &System,
    frontier: &[(usize, Config)],
    next: &AtomicUsize,
    interner: &StripedInterner,
) -> LevelPart {
    let mut part = LevelPart {
        children: Vec::new(),
        discovered: Vec::new(),
        error: None,
    };
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= frontier.len() {
            return part;
        }
        let (v, cfg) = &frontier[i];
        let mut kids = Vec::new();
        for p in 0..system.processes() {
            match system.step(cfg, p) {
                Ok(steps) => {
                    for child in steps {
                        let (id, new) = interner.intern(&child);
                        if new {
                            part.discovered.push((id, child));
                        }
                        kids.push((p, id));
                    }
                }
                Err(e) => merge_error(&mut part.error, (format!("{e:?}"), p, e)),
            }
        }
        part.children.push((*v, kids));
    }
}

/// Handles into the global registry held for the duration of one build,
/// so per-level recording is a handful of lock-free atomic ops (the
/// registry mutex is taken once, up front). Only constructed when
/// `opts.obs.metrics` is set — a disabled build never touches the
/// registry.
struct BuildMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    frontier: Arc<Histogram>,
    level_ns: Arc<Histogram>,
    max_level: Arc<Gauge>,
}

impl BuildMetrics {
    fn new() -> BuildMetrics {
        let reg = Registry::global();
        BuildMetrics {
            hits: reg.counter("explorer.interner.hits"),
            misses: reg.counter("explorer.interner.misses"),
            frontier: reg.histogram("explorer.bfs.frontier"),
            level_ns: reg.histogram("explorer.bfs.level_ns"),
            max_level: reg.gauge("explorer.bfs.max_level"),
        }
    }
}

impl ConfigGraph {
    /// Builds the reachable configuration graph of `system`.
    ///
    /// Cycles are recorded, not rejected; callers needing wait-freedom
    /// should inspect [`ConfigGraph::has_cycle`].
    ///
    /// # Errors
    ///
    /// Returns [`ExplorerError`] on malformed programs, or
    /// [`ExplorerError::BudgetExceeded`] when the number of
    /// configurations exceeds `opts.max_configs` or the breadth-first
    /// level count exceeds `opts.max_depth` (the BFS level of a node
    /// never exceeds its execution depth, so this fires only on systems
    /// genuinely deeper than the budget).
    pub fn build(system: &System, opts: &ExploreOptions) -> Result<ConfigGraph, ExplorerError> {
        let init = system.initial_config()?;
        let threads = opts.effective_threads();
        let interner = StripedInterner::new(threads);
        let (root, _) = interner.intern(&init);
        let metrics = opts.obs.metrics.then(BuildMetrics::new);
        if let Some(m) = &metrics {
            m.misses.add(1); // the root's intern
        }

        let mut frontier: Vec<(usize, Config)> = vec![(root, init)];
        let mut adjacency: Vec<(usize, Vec<(usize, usize)>)> = Vec::new();
        let mut edges = 0usize;
        let mut level = 0usize;

        while !frontier.is_empty() {
            if opts.cancel.is_cancelled() {
                return Err(ExplorerError::Cancelled);
            }
            if level > opts.max_depth {
                return Err(ExplorerError::BudgetExceeded {
                    kind: BudgetKind::Depth,
                    budget: opts.max_depth,
                    used: level,
                });
            }
            let _level_span =
                wfc_obs::span::enter_lazy(opts.obs.spans, "bfs_level", || format!("level={level}"));
            let level_start = metrics.as_ref().map(|_| Instant::now());
            let next = AtomicUsize::new(0);
            // Spawning workers costs more than expanding a small frontier;
            // expand those levels inline. This is exactly the `threads = 1`
            // path, so results are unchanged — parallel output is invariant
            // under how each level was scheduled.
            let level_workers = if frontier.len() < PARALLEL_FRONTIER_MIN {
                1
            } else {
                threads
            };
            let parts: Vec<LevelPart> = if level_workers <= 1 {
                vec![expand_worker(system, &frontier, &next, &interner)]
            } else {
                std::thread::scope(|s| {
                    let workers: Vec<_> = (0..level_workers)
                        .map(|_| s.spawn(|| expand_worker(system, &frontier, &next, &interner)))
                        .collect();
                    workers
                        .into_iter()
                        .map(|w| w.join().expect("worker panicked"))
                        .collect()
                })
            };

            let mut error: Option<(String, usize, ExplorerError)> = None;
            let mut next_frontier = Vec::new();
            let mut level_edges = 0usize;
            for part in parts {
                level_edges += part.children.iter().map(|(_, k)| k.len()).sum::<usize>();
                adjacency.extend(part.children);
                next_frontier.extend(part.discovered);
                if let Some(e) = part.error {
                    merge_error(&mut error, e);
                }
            }
            edges += level_edges;
            if let Some(m) = &metrics {
                // Every edge is one intern call; the calls that did not
                // discover a new node were hits.
                m.frontier.record(frontier.len() as u64);
                m.misses.add(next_frontier.len() as u64);
                m.hits.add((level_edges - next_frontier.len()) as u64);
                m.max_level.record_max(level as i64);
                if let Some(t0) = level_start {
                    m.level_ns.record(t0.elapsed().as_nanos() as u64);
                }
            }
            if let Some((_, _, e)) = error {
                return Err(e);
            }
            if interner.len() > opts.max_configs {
                return Err(ExplorerError::BudgetExceeded {
                    kind: BudgetKind::Configs,
                    budget: opts.max_configs,
                    used: interner.len(),
                });
            }
            frontier = next_frontier;
            level += 1;
        }

        if opts.obs.metrics {
            let reg = Registry::global();
            reg.counter("explorer.configs").add(interner.len() as u64);
            reg.counter("explorer.edges").add(edges as u64);
        }

        let configs = interner.into_configs();
        let mut children: Vec<Vec<(usize, usize)>> = vec![Vec::new(); configs.len()];
        for (v, kids) in adjacency {
            children[v] = kids;
        }

        // Cycle detection + post-order: sequential iterative DFS with
        // colours (0 white, 1 grey, 2 black) over the finished adjacency.
        let mut colour: Vec<u8> = vec![0; configs.len()];
        let mut post_order: Vec<usize> = Vec::with_capacity(configs.len());
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        colour[root] = 1;
        let mut has_cycle = false;
        while let Some(&(v, next_child)) = stack.last() {
            let kids = &children[v];
            if next_child < kids.len() {
                let (_, c) = kids[next_child];
                stack.last_mut().expect("non-empty").1 += 1;
                match colour[c] {
                    0 => {
                        colour[c] = 1;
                        stack.push((c, 0));
                    }
                    1 => has_cycle = true,
                    _ => {}
                }
            } else {
                colour[v] = 2;
                post_order.push(v);
                stack.pop();
            }
        }

        Ok(ConfigGraph {
            configs,
            children,
            root,
            edges,
            has_cycle,
            post_order,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// `true` if the graph has no nodes (never: the root always exists).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Node ids of terminal configurations (all processes decided).
    pub fn terminals(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).filter(|&v| self.configs[v].is_terminal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Operand, ProgramBuilder};
    use crate::system::ObjectInstance;
    use std::sync::Arc;
    use wfc_spec::canonical;

    #[test]
    fn graph_of_two_step_race_is_a_diamond_plus_tails() {
        let tas = Arc::new(canonical::test_and_set(2));
        let init = tas.state_id("unset").unwrap();
        let tas_inv = tas.invocation_id("test_and_set").unwrap();
        let obj = ObjectInstance::identity_ports(tas, init, 2);
        let mk = || {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            b.invoke(0_i64, Operand::Const(tas_inv.index() as i64), Some(r));
            b.ret(r);
            b.build().unwrap()
        };
        let sys = System::new(vec![obj], vec![mk(), mk()]);
        let g = ConfigGraph::build(&sys, &ExploreOptions::default()).unwrap();
        assert!(!g.has_cycle);
        // root, two intermediate, two terminals (decisions differ by winner).
        assert_eq!(g.len(), 5);
        assert_eq!(g.terminals().count(), 2);
        assert_eq!(g.post_order.len(), g.len());
        // Post-order ends at the root.
        assert_eq!(*g.post_order.last().unwrap(), g.root);
    }

    #[test]
    fn cycle_is_flagged_not_fatal() {
        let reg = Arc::new(canonical::boolean_register(2));
        let init = reg.state_id("v0").unwrap();
        let read = reg.invocation_id("read").unwrap();
        let r1 = reg.response_id("1").unwrap();
        let obj = ObjectInstance::identity_ports(reg, init, 1);
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        let t = b.var("t");
        let top = b.fresh_label();
        b.bind(top);
        b.invoke(0_i64, Operand::Const(read.index() as i64), Some(r));
        b.compute(t, r, crate::program::BinOp::Eq, r1.index() as i64);
        b.jump_if_zero(t, top);
        b.ret(r);
        let sys = System::new(vec![obj], vec![b.build().unwrap()]);
        let g = ConfigGraph::build(&sys, &ExploreOptions::default()).unwrap();
        assert!(g.has_cycle);
        assert_eq!(g.terminals().count(), 0);
    }

    #[test]
    fn parallel_build_matches_sequential_shape() {
        let tas = Arc::new(canonical::test_and_set(2));
        let init = tas.state_id("unset").unwrap();
        let tas_inv = tas.invocation_id("test_and_set").unwrap();
        let obj = ObjectInstance::identity_ports(tas, init, 2);
        let mk = || {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            b.invoke(0_i64, Operand::Const(tas_inv.index() as i64), Some(r));
            b.ret(r);
            b.build().unwrap()
        };
        let sys = System::new(vec![obj], vec![mk(), mk()]);
        let seq = ConfigGraph::build(&sys, &ExploreOptions::default()).unwrap();
        for threads in [2, 4, 8] {
            let par =
                ConfigGraph::build(&sys, &ExploreOptions::default().with_threads(threads)).unwrap();
            assert_eq!(par.len(), seq.len());
            assert_eq!(par.edges, seq.edges);
            assert_eq!(par.has_cycle, seq.has_cycle);
            assert_eq!(par.terminals().count(), seq.terminals().count());
            assert_eq!(par.post_order.len(), seq.post_order.len());
        }
    }
}
