//! # `wfc-explorer` — an exhaustive model checker for wait-free systems
//!
//! The substrate behind the paper's execution-tree arguments (Section 4.2
//! of Bazzi–Neiger–Peterson, PODC 1994). Implementations are modelled as
//! [`System`]s: shared objects given by `wfc-spec` finite types plus one
//! deterministic [`Program`](program::Program) per process. The crate then
//! offers:
//!
//! * [`explore`] — enumerate **all** interleavings; verify wait-freedom
//!   (König's Lemma: finite tree ⟺ no cycle), compute the depth bound `D`
//!   and per-object access bounds `r_b`, `w_b`, and collect decision
//!   vectors for agreement/validity checks.
//! * [`linearizability`] — a Wing–Gong linearizability checker and a
//!   whole-system one-shot implementation checker.
//! * [`bivalence`] — FLP/Herlihy valency analysis (bivalent and critical
//!   configurations), used to refute register-only consensus protocols.
//! * [`graph`] — the underlying configuration graph.
//!
//! Programs are a small register-machine bytecode (module [`program`]) so
//! that configurations are hashable and — crucially for Theorem 5 — so
//! that `wfc-core`'s register-elimination compiler can rewrite them.
//!
//! ## Example: race two processes on a test-and-set
//!
//! ```
//! use std::sync::Arc;
//! use wfc_explorer::{explore, ExploreOptions, ObjectInstance, System};
//! use wfc_explorer::program::ProgramBuilder;
//! use wfc_spec::canonical;
//!
//! let tas = Arc::new(canonical::test_and_set(2));
//! let init = tas.state_id("unset").unwrap();
//! let inv = tas.invocation_id("test_and_set").unwrap().index() as i64;
//! let obj = ObjectInstance::identity_ports(tas, init, 2);
//! let program = {
//!     let mut b = ProgramBuilder::new();
//!     let r = b.var("r");
//!     b.invoke(0_i64, inv, Some(r));
//!     b.ret(r);
//!     b.build()?
//! };
//! let system = System::new(vec![obj], vec![program.clone(), program]);
//! let result = explore(&system, &ExploreOptions::default())?;
//! assert_eq!(result.depth, 2);
//! assert_eq!(result.decisions.len(), 2); // either process wins
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bivalence;
pub mod crash;
mod error;
mod explore;
pub mod graph;
pub mod linearizability;
pub mod pool;
pub mod program;
pub mod simulate;
mod system;
pub mod trace;

pub use error::{ExplorerError, ProgramError};
pub use explore::{
    explore, find_violation, AccessTable, Budget, CancelToken, Exploration, ExploreOptions,
    ObsOptions, Progress, Violation, Wall,
};
pub use system::{Access, Config, ObjectInstance, System};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::System>();
        assert_send_sync::<crate::Exploration>();
        assert_send_sync::<crate::program::Program>();
    }
}
