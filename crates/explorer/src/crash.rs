//! Crash tolerance of wait-free implementations (paper, Section 1).
//!
//! The paper motivates wait-freedom by fault tolerance: "they tolerate
//! any number of stopping failures". Operationally: from **any**
//! reachable configuration, if an arbitrary subset of processes simply
//! stops taking steps, the survivors still finish on every continuation
//! — and their decisions still satisfy agreement and validity together
//! with any decisions already made.
//!
//! [`check_crash_tolerance`] verifies this exhaustively: it enumerates
//! every reachable configuration, every survivor subset, and every
//! survivor-only continuation. Wait-freedom makes this property *follow*
//! from plain correctness, and the checker confirms it mechanically —
//! and refutes it for blocking protocols, where a crashed process can
//! strand the survivors.

use std::collections::{BTreeSet, HashSet};

use crate::error::ExplorerError;
use crate::explore::ExploreOptions;
use crate::graph::ConfigGraph;
use crate::system::{Config, System};

/// The result of the exhaustive crash-tolerance check.
#[derive(Clone, Debug)]
pub struct CrashToleranceReport {
    /// Reachable configurations examined.
    pub configs: usize,
    /// (configuration, survivor-set) scenarios explored.
    pub scenarios: usize,
    /// Scenarios in which a survivor could run forever (blocking).
    pub stuck_scenarios: usize,
    /// Scenarios whose survivor decisions broke agreement.
    pub disagreements: usize,
    /// Scenarios whose survivor decisions broke validity.
    pub invalid: usize,
}

impl CrashToleranceReport {
    /// `true` if every crash scenario terminates in agreement and
    /// validity — the paper's fault-tolerance claim for this system.
    pub fn holds(&self) -> bool {
        self.stuck_scenarios == 0 && self.disagreements == 0 && self.invalid == 0
    }
}

/// Exhaustively checks crash tolerance: from every reachable
/// configuration and for every nonempty survivor subset, all
/// survivor-only continuations terminate, and every decision made (by
/// survivors or earlier) agrees and lies in `allowed`.
///
/// # Errors
///
/// Returns [`ExplorerError`] on malformed programs or budget exhaustion.
/// Non-termination of a survivor-only continuation is *not* an error —
/// it is recorded as a stuck scenario (that is the interesting outcome
/// for blocking protocols).
pub fn check_crash_tolerance(
    system: &System,
    allowed: &[i64],
    opts: &ExploreOptions,
) -> Result<CrashToleranceReport, ExplorerError> {
    let graph = ConfigGraph::build(system, opts)?;
    let n = system.processes();

    // Per-configuration scenario checks are independent: fan them across
    // the configured worker pool. Reports are summed, so the merge is
    // order-insensitive; errors are taken in configuration order.
    let per_config = crate::pool::parallel_map(
        opts.effective_threads(),
        &graph.configs,
        |cfg| -> Result<CrashToleranceReport, ExplorerError> {
            let mut partial = CrashToleranceReport {
                configs: 0,
                scenarios: 0,
                stuck_scenarios: 0,
                disagreements: 0,
                invalid: 0,
            };
            // Survivor subsets: every nonempty subset of processes.
            // (Subsets containing decided processes are fine: decided
            // processes take no further steps anyway.)
            for mask in 1..(1u32 << n) {
                let survivors: Vec<usize> = (0..n).filter(|p| mask & (1 << p) != 0).collect();
                partial.scenarios += 1;
                let (stuck, decision_sets) = survivor_outcomes(system, cfg, &survivors, opts)?;
                if stuck {
                    partial.stuck_scenarios += 1;
                }
                for decisions in decision_sets {
                    let mut agreed: Option<i64> = None;
                    for d in decisions {
                        if !allowed.contains(&d) {
                            partial.invalid += 1;
                            break;
                        }
                        match agreed {
                            None => agreed = Some(d),
                            Some(a) if a != d => {
                                partial.disagreements += 1;
                                break;
                            }
                            Some(_) => {}
                        }
                    }
                }
            }
            Ok(partial)
        },
    );

    let mut report = CrashToleranceReport {
        configs: graph.len(),
        scenarios: 0,
        stuck_scenarios: 0,
        disagreements: 0,
        invalid: 0,
    };
    for partial in per_config {
        let partial = partial?;
        report.scenarios += partial.scenarios;
        report.stuck_scenarios += partial.stuck_scenarios;
        report.disagreements += partial.disagreements;
        report.invalid += partial.invalid;
    }
    Ok(report)
}

/// Explores survivor-only continuations from `start`. Returns whether a
/// cycle exists (a survivor can run forever) and the set of decision
/// multisets at survivor-terminal configurations (decisions of *all*
/// processes that have decided, crashed ones included).
fn survivor_outcomes(
    system: &System,
    start: &Config,
    survivors: &[usize],
    opts: &ExploreOptions,
) -> Result<(bool, BTreeSet<Vec<i64>>), ExplorerError> {
    let mut outcomes = BTreeSet::new();
    let mut seen: HashSet<Config> = HashSet::new();
    let mut stack = vec![start.clone()];
    seen.insert(start.clone());
    let mut stuck = false;
    let mut pops = 0u64;
    while let Some(cfg) = stack.pop() {
        let progress = wfc_spec::control::Progress {
            configs: seen.len() as u64,
            ..Default::default()
        };
        if opts.cancel.is_cancelled() {
            progress.record();
            return Err(ExplorerError::Cancelled { progress });
        }
        // Clock reads dominate a pop; amortize the deadline poll.
        if pops & 0xFF == 0 {
            if let Some(e) = opts.budget.wall_exceeded(progress) {
                return Err(ExplorerError::Exhausted(e));
            }
        }
        pops += 1;
        if let Some(e) = opts.budget.configs_exceeded(seen.len() as u64, progress) {
            return Err(ExplorerError::Exhausted(e));
        }
        let mut enabled = false;
        for &p in survivors {
            for child in system.step(&cfg, p)? {
                enabled = true;
                if seen.insert(child.clone()) {
                    stack.push(child);
                }
            }
        }
        if !enabled {
            // Survivor-terminal: all survivors decided. Collect every
            // decision made so far (crashed processes may have decided
            // before crashing).
            let decisions: Vec<i64> = cfg.procs.iter().filter_map(|p| p.decided).collect();
            outcomes.insert(decisions);
        }
    }
    // A survivor can run forever iff some configuration repeats along a
    // survivor-only path; with memoisation that shows up as a state we
    // could revisit. Detect via a second pass: any config with an
    // enabled survivor step into an already-seen config that is also an
    // ancestor would need full cycle detection; since survivor-only
    // subgraphs here are small, redo it with colours.
    {
        let mut colour: std::collections::HashMap<Config, u8> = Default::default();
        fn dfs(
            system: &System,
            cfg: &Config,
            survivors: &[usize],
            colour: &mut std::collections::HashMap<Config, u8>,
        ) -> Result<bool, ExplorerError> {
            colour.insert(cfg.clone(), 1);
            for &p in survivors {
                for child in system.step(cfg, p)? {
                    match colour.get(&child) {
                        Some(1) => return Ok(true),
                        Some(_) => {}
                        None => {
                            if dfs(system, &child, survivors, colour)? {
                                return Ok(true);
                            }
                        }
                    }
                }
            }
            colour.insert(cfg.clone(), 2);
            Ok(false)
        }
        if dfs(system, start, survivors, &mut colour)? {
            stuck = true;
        }
    }
    Ok((stuck, outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{BinOp, Operand, ProgramBuilder};
    use crate::system::ObjectInstance;
    use std::sync::Arc;
    use wfc_spec::canonical;

    /// Two processes race on a TAS and decide the response: wait-free,
    /// hence crash-tolerant.
    fn tas_race() -> System {
        let tas = Arc::new(canonical::test_and_set(2));
        let init = tas.state_id("unset").unwrap();
        let inv = tas.invocation_id("test_and_set").unwrap().index() as i64;
        let obj = ObjectInstance::identity_ports(tas, init, 2);
        let mk = || {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            b.invoke(0_i64, inv, Some(r));
            b.ret(r);
            b.build().unwrap()
        };
        System::new(vec![obj], vec![mk(), mk()])
    }

    #[test]
    fn wait_free_race_never_blocks_under_crashes() {
        // The raw race is not a consensus protocol (winner decides 0,
        // loser 1 — "disagreement" is by design), but wait-freedom means
        // no crash can ever strand a survivor.
        let report =
            check_crash_tolerance(&tas_race(), &[0, 1], &ExploreOptions::default()).unwrap();
        assert!(report.scenarios > 0);
        assert_eq!(report.stuck_scenarios, 0, "{report:?}");
        assert_eq!(report.invalid, 0);
    }

    /// A blocking protocol: process 1 spins until process 0 raises a
    /// flag. If process 0 crashes first, process 1 is stuck — the checker
    /// must report it.
    #[test]
    fn blocking_protocol_is_caught() {
        let reg = Arc::new(canonical::boolean_register(2));
        let v0 = reg.state_id("v0").unwrap();
        let read = reg.invocation_id("read").unwrap().index() as i64;
        let write1 = reg.invocation_id("write1").unwrap().index() as i64;
        let r1 = reg.response_id("1").unwrap().index() as i64;
        let obj = ObjectInstance::identity_ports(reg, v0, 2);
        let flagger = {
            let mut b = ProgramBuilder::new();
            b.invoke(0_i64, write1, None);
            b.ret(0_i64);
            b.build().unwrap()
        };
        let spinner = {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            let t = b.var("t");
            let top = b.fresh_label();
            b.bind(top);
            b.invoke(0_i64, read, Some(r));
            b.compute(t, r, BinOp::Eq, Operand::Const(r1));
            b.jump_if_zero(t, top);
            b.ret(0_i64);
            b.build().unwrap()
        };
        let sys = System::new(vec![obj], vec![flagger, spinner]);
        let report = check_crash_tolerance(&sys, &[0], &ExploreOptions::default()).unwrap();
        assert!(!report.holds());
        assert!(report.stuck_scenarios > 0, "{report:?}");
    }

    /// The full TAS+registers consensus protocol is crash-tolerant —
    /// the paper's fault-tolerance motivation, machine-checked.
    #[test]
    fn consensus_protocol_is_crash_tolerant() {
        // Reuse the bivalence test fixture shape: inline a minimal copy.
        let reg = Arc::new(canonical::boolean_register(2));
        let tas = Arc::new(canonical::test_and_set(2));
        let v0 = reg.state_id("v0").unwrap();
        let unset = tas.state_id("unset").unwrap();
        let read = reg.invocation_id("read").unwrap().index() as i64;
        let w = |v: bool| {
            reg.invocation_id(if v { "write1" } else { "write0" })
                .unwrap()
                .index() as i64
        };
        let tas_inv = tas.invocation_id("test_and_set").unwrap().index() as i64;
        let announce = |p: usize| {
            let mut ports = vec![None, None];
            ports[p] = Some(wfc_spec::PortId::new(0));
            ports[1 - p] = Some(wfc_spec::PortId::new(1));
            ObjectInstance::new(Arc::clone(&reg), v0, ports)
        };
        let mk = |me: usize, input: bool| {
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            let won = b.var("won");
            let lose = b.fresh_label();
            b.invoke(me as i64, w(input), None);
            b.invoke(2_i64, tas_inv, Some(r));
            b.compute(won, r, BinOp::Eq, 0_i64);
            b.jump_if_zero(won, lose);
            b.ret(i64::from(input));
            b.bind(lose);
            b.invoke(1 - me as i64, read, Some(r));
            b.ret(r);
            b.build().unwrap()
        };
        let sys = System::new(
            vec![
                announce(0),
                announce(1),
                ObjectInstance::identity_ports(tas, unset, 2),
            ],
            vec![mk(0, false), mk(1, true)],
        );
        let report = check_crash_tolerance(&sys, &[0, 1], &ExploreOptions::default()).unwrap();
        assert!(report.holds(), "{report:?}");
    }
}
