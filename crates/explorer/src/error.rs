//! Error types for the explorer crate.

use std::error::Error;
use std::fmt;

/// An error raised while building or running a program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// The program counter left the code (missing `Return`, bad label).
    PcOutOfRange {
        /// The offending program counter.
        pc: usize,
    },
    /// A jump referenced a label that was never bound.
    UnboundLabel,
    /// `x mod 0` was evaluated.
    DivisionByZero,
    /// More than [`LOCAL_FUEL`](crate::program::LOCAL_FUEL) local
    /// instructions ran without reaching an invoke or a return.
    LocalDivergence,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::PcOutOfRange { pc } => {
                write!(f, "program counter {pc} out of range")
            }
            ProgramError::UnboundLabel => write!(f, "jump references an unbound label"),
            ProgramError::DivisionByZero => write!(f, "modulo by zero"),
            ProgramError::LocalDivergence => {
                write!(
                    f,
                    "local instruction budget exhausted (divergent local loop)"
                )
            }
        }
    }
}

impl Error for ProgramError {}

/// An error raised while exploring a [`System`](crate::System).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExplorerError {
    /// A program error occurred inside a process.
    Program {
        /// The offending process index.
        process: usize,
        /// The underlying program error.
        source: ProgramError,
    },
    /// A program invoked an object index that does not exist.
    NoSuchObject {
        /// The offending process index.
        process: usize,
        /// The evaluated object index.
        obj: i64,
    },
    /// A program used an invocation index outside its object's type.
    NoSuchInvocation {
        /// The offending process index.
        process: usize,
        /// The object index.
        obj: usize,
        /// The evaluated invocation index.
        inv: i64,
    },
    /// A process accessed an object through which it has no assigned port
    /// (Section 2.1: at most one process may use a port).
    NoPortAssigned {
        /// The offending process index.
        process: usize,
        /// The object index.
        obj: usize,
    },
    /// Exploration exhausted one of its [`Budget`](crate::Budget) axes
    /// ([`ExploreOptions`](crate::ExploreOptions)). The payload carries
    /// the exact usage at the tripping sync point and a
    /// [`Progress`](wfc_spec::control::Progress) snapshot; both are
    /// deterministic across thread counts — budgets are checked only at
    /// level-sync points, and interning happens at the coordinator in
    /// frontier order.
    Exhausted(wfc_spec::control::Exhausted),
    /// The system admits an infinite execution (a cycle in the
    /// configuration graph), so access bounds do not exist. This is
    /// exactly the failure of wait-freedom (Section 4.2).
    NotWaitFree,
    /// The exploration's [`CancelToken`](crate::CancelToken) was set
    /// (server-side deadline or shutdown). Checked only at level-sync
    /// points, like the budgets, so a run either completes or is
    /// cancelled — completed quantities are never partial, and the
    /// attached snapshot reports exactly the work done.
    Cancelled {
        /// Work completed when the token was observed.
        progress: wfc_spec::control::Progress,
    },
}

impl fmt::Display for ExplorerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplorerError::Program { process, source } => {
                write!(f, "process {process}: {source}")
            }
            ExplorerError::NoSuchObject { process, obj } => {
                write!(f, "process {process} invoked nonexistent object {obj}")
            }
            ExplorerError::NoSuchInvocation { process, obj, inv } => {
                write!(
                    f,
                    "process {process} used invalid invocation {inv} on object {obj}"
                )
            }
            ExplorerError::NoPortAssigned { process, obj } => {
                write!(f, "process {process} has no port on object {obj}")
            }
            ExplorerError::Exhausted(e) => write!(f, "{e}"),
            ExplorerError::NotWaitFree => {
                write!(
                    f,
                    "system admits an infinite execution; access bounds are undefined"
                )
            }
            ExplorerError::Cancelled { .. } => {
                write!(f, "exploration cancelled before completion")
            }
        }
    }
}

impl Error for ExplorerError {}

impl From<ProgramError> for ExplorerError {
    fn from(source: ProgramError) -> Self {
        ExplorerError::Program {
            process: usize::MAX,
            source,
        }
    }
}

impl From<wfc_spec::control::Exhausted> for ExplorerError {
    fn from(e: wfc_spec::control::Exhausted) -> Self {
        ExplorerError::Exhausted(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_compose() {
        let e = ExplorerError::Program {
            process: 2,
            source: ProgramError::DivisionByZero,
        };
        assert!(e.to_string().contains("process 2"));
        let e: ExplorerError = ProgramError::UnboundLabel.into();
        assert!(matches!(e, ExplorerError::Program { .. }));
    }

    #[test]
    fn budget_errors_render_both_budget_and_observed() {
        use wfc_spec::control::{Exhausted, Progress, Resource};
        let e = ExplorerError::Exhausted(Exhausted {
            resource: Resource::Configs,
            budget: 100,
            used: 135,
            progress: Progress::default(),
        });
        assert_eq!(
            e.to_string(),
            "exploration exceeded the budget of 100 configurations (observed 135)"
        );
        let e = ExplorerError::Exhausted(Exhausted {
            resource: Resource::Depth,
            budget: 4,
            used: 5,
            progress: Progress::default(),
        });
        assert_eq!(
            e.to_string(),
            "exploration exceeded the budget of 4 depth levels (observed 5)"
        );
    }
}
