//! Property test: the Wing–Gong linearizability checker against a
//! brute-force oracle on small random histories.
//!
//! The oracle enumerates every permutation of the operations, keeps the
//! ones consistent with real-time precedence, and simulates each against
//! the sequential specification. On histories of ≤ 6 operations the two
//! must agree exactly.
//!
//! Randomness comes from the in-repo [`SplitMix64`] generator (the
//! workspace builds offline, without a property-testing framework);
//! every case reproduces from the seed in the assertion message.

use wfc_explorer::linearizability::{is_linearizable, ConcurrentHistory, OpRecord};
use wfc_spec::prng::SplitMix64;
use wfc_spec::{canonical, FiniteType, PortId, StateId};

const CASES: u64 = 512;

fn brute_force_linearizable(ty: &FiniteType, init: StateId, ops: &[OpRecord]) -> bool {
    fn permutations(n: usize) -> Vec<Vec<usize>> {
        if n == 0 {
            return vec![vec![]];
        }
        let mut out = Vec::new();
        for rest in permutations(n - 1) {
            for pos in 0..=rest.len() {
                let mut p = rest.clone();
                p.insert(pos, n - 1);
                out.push(p);
            }
        }
        out
    }
    'perm: for perm in permutations(ops.len()) {
        // Real-time precedence must be respected.
        for (a, &i) in perm.iter().enumerate() {
            for &j in &perm[a + 1..] {
                if ops[j].responded_at < ops[i].invoked_at {
                    continue 'perm;
                }
            }
        }
        // Simulate; nondeterministic outcomes: try all via DFS.
        fn sim(
            ty: &FiniteType,
            state: StateId,
            ops: &[OpRecord],
            perm: &[usize],
            k: usize,
        ) -> bool {
            if k == perm.len() {
                return true;
            }
            let op = &ops[perm[k]];
            ty.outcomes(state, op.port, op.inv)
                .iter()
                .filter(|o| o.resp == op.resp)
                .any(|o| sim(ty, o.next, ops, perm, k + 1))
        }
        if sim(ty, init, ops, &perm, 0) {
            return true;
        }
    }
    false
}

/// A random small history over a boolean register: 2 ports, reads and
/// writes with arbitrary (but well-formed) intervals.
fn random_register_history(rng: &mut SplitMix64) -> Vec<OpRecord> {
    let reg = canonical::boolean_register(2);
    let read = reg.invocation_id("read").unwrap();
    let w0 = reg.invocation_id("write0").unwrap();
    let w1 = reg.invocation_id("write1").unwrap();
    let r0 = reg.response_id("0").unwrap();
    let r1 = reg.response_id("1").unwrap();
    let ok = reg.response_id("ok").unwrap();
    let len = rng.gen_range(0, 6);
    (0..len)
        .map(|k| {
            let kind = rng.gen_range(0, 3);
            let port = rng.gen_range(0, 2);
            let start = rng.gen_range(0, 12) as i64;
            let dur = rng.gen_range(1, 6) as i64;
            let (inv, resp) = match kind {
                0 => (read, if k % 2 == 0 { r0 } else { r1 }),
                1 => (w0, ok),
                _ => (w1, ok),
            };
            OpRecord {
                port: PortId::new(port),
                inv,
                resp,
                invoked_at: start,
                responded_at: start + dur,
            }
        })
        .collect()
}

#[test]
fn checker_agrees_with_brute_force() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x11EA ^ seed);
        let ops = random_register_history(&mut rng);
        let reg = canonical::boolean_register(2);
        let init = reg.state_id("v0").unwrap();
        let fast = is_linearizable(&reg, init, &ConcurrentHistory::new(ops.clone()));
        let slow = brute_force_linearizable(&reg, init, &ops);
        assert_eq!(fast, slow, "seed {seed}, history: {ops:?}");
    }
}

/// The nondeterministic one-use bit: checker and oracle also agree
/// when outcome sets have more than one element.
#[test]
fn checker_agrees_on_one_use_bit() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::new(0x1B17 ^ seed);
        let ty = canonical::one_use_bit();
        let read = ty.invocation_id("read").unwrap();
        let write = ty.invocation_id("write").unwrap();
        let r0 = ty.response_id("0").unwrap();
        let r1 = ty.response_id("1").unwrap();
        let ok = ty.response_id("ok").unwrap();
        let len = rng.gen_range(0, 5);
        let ops: Vec<OpRecord> = (0..len)
            .map(|_| {
                let kind = rng.gen_range(0, 2);
                let port = rng.gen_range(0, 2);
                let start = rng.gen_range(0, 8) as i64;
                let dur = rng.gen_range(1, 4) as i64;
                let bit = rng.gen_range(0, 2);
                let (inv, resp) = if kind == 0 {
                    (read, if bit == 0 { r0 } else { r1 })
                } else {
                    (write, ok)
                };
                OpRecord {
                    port: PortId::new(port),
                    inv,
                    resp,
                    invoked_at: start,
                    responded_at: start + dur,
                }
            })
            .collect();
        let init = ty.state_id("UNSET").unwrap();
        let fast = is_linearizable(&ty, init, &ConcurrentHistory::new(ops.clone()));
        let slow = brute_force_linearizable(&ty, init, &ops);
        assert_eq!(fast, slow, "seed {seed}, history: {ops:?}");
    }
}
