//! Spec-level consensus protocols for the model checker.
//!
//! These are the same protocols as [`crate::native`], expressed as
//! `wfc-explorer` [`System`]s over `wfc-spec` object types, so that:
//!
//! * every interleaving can be enumerated (wait-freedom, agreement,
//!   validity — the paper's Section 2.2 correctness conditions);
//! * the Section 4.2 execution-tree bounds `D`, `r_b`, `w_b` can be
//!   computed exactly;
//! * the protocols that use registers can be fed to `wfc-core`'s
//!   register-elimination compiler (Theorem 5).
//!
//! Each builder takes a concrete input vector (the paper considers the
//! `2^n` execution trees separately, one per vector) and returns a
//! [`ConsensusSystem`]: the system plus metadata identifying its
//! register objects, which is what the eliminator rewrites.

use std::sync::Arc;

use wfc_explorer::program::{BinOp, ProgramBuilder, Var};
use wfc_explorer::{explore, ExploreOptions, ExplorerError, ObjectInstance, System};
use wfc_spec::{canonical, PortId};

/// Metadata for one single-reader single-writer boolean register object
/// inside a [`ConsensusSystem`] — the elimination target of Theorem 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SrswRegisterInfo {
    /// Index of the register in the system's object list.
    pub obj: usize,
    /// The single process that writes it.
    pub writer_process: usize,
    /// The single process that reads it.
    pub reader_process: usize,
    /// The register's initial value.
    pub init: bool,
}

/// A consensus implementation as a model-checkable system, with its
/// register objects identified.
#[derive(Clone, Debug)]
pub struct ConsensusSystem {
    /// The implementation.
    pub system: System,
    /// The SRSW boolean registers among its objects (empty for
    /// register-free protocols).
    pub registers: Vec<SrswRegisterInfo>,
    /// The input value proposed by each process.
    pub inputs: Vec<bool>,
}

/// All `2^n` binary input vectors, in lexicographic order — one per
/// execution tree of the paper's Section 4.2.
pub fn binary_input_vectors(n: usize) -> Vec<Vec<bool>> {
    (0..1usize << n)
        .map(|mask| (0..n).map(|p| mask & (1 << p) != 0).collect())
        .collect()
}

fn decide_register_value(b: &mut ProgramBuilder, r: Var) {
    // canonical::register(2, _) numbers responses "0" → 0 and "1" → 1, so
    // a read's response index *is* the value; decide it directly.
    b.ret(r);
}

/// Two-process consensus from one test-and-set object and two SRSW
/// boolean announce registers (the `h_1^r(TAS) = 2` protocol,
/// Herlihy \[7\]).
///
/// Objects: `0` and `1` are the announce registers of processes 0 and 1;
/// `2` is the test-and-set. Each process writes its input, races on the
/// TAS, and on a loss reads the winner's announcement.
pub fn tas_consensus_system(inputs: [bool; 2]) -> ConsensusSystem {
    let reg = Arc::new(canonical::boolean_register(2));
    let tas = Arc::new(canonical::test_and_set(2));
    assert_eq!(reg.response_id("0").map(|r| r.index()), Some(0));
    assert_eq!(reg.response_id("1").map(|r| r.index()), Some(1));
    let v0 = reg.state_id("v0").unwrap();
    let unset = tas.state_id("unset").unwrap();
    let read = reg.invocation_id("read").unwrap().index() as i64;
    let write_inv = |v: bool| {
        reg.invocation_id(if v { "write1" } else { "write0" })
            .unwrap()
            .index() as i64
    };
    let tas_inv = tas.invocation_id("test_and_set").unwrap().index() as i64;
    // announce[p]: written by p through port 0, read by 1-p through port 1.
    let announce = |p: usize| {
        let mut ports = vec![None, None];
        ports[p] = Some(PortId::new(0));
        ports[1 - p] = Some(PortId::new(1));
        ObjectInstance::new(Arc::clone(&reg), v0, ports)
    };
    let objects = vec![
        announce(0),
        announce(1),
        ObjectInstance::identity_ports(tas, unset, 2),
    ];
    let program = |me: usize, input: bool| {
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        let won = b.var("won");
        let lose = b.fresh_label();
        b.invoke(me as i64, write_inv(input), None);
        b.invoke(2_i64, tas_inv, Some(r));
        b.compute(won, r, BinOp::Eq, 0_i64);
        b.jump_if_zero(won, lose);
        b.ret(i64::from(input));
        b.bind(lose);
        b.invoke(1 - me as i64, read, Some(r));
        decide_register_value(&mut b, r);
        b.build().expect("well-formed protocol program")
    };
    ConsensusSystem {
        system: System::new(objects, vec![program(0, inputs[0]), program(1, inputs[1])]),
        registers: vec![
            SrswRegisterInfo {
                obj: 0,
                writer_process: 0,
                reader_process: 1,
                init: false,
            },
            SrswRegisterInfo {
                obj: 1,
                writer_process: 1,
                reader_process: 0,
                init: false,
            },
        ],
        inputs: inputs.to_vec(),
    }
}

/// Two-process consensus from one fetch-and-add counter and two SRSW
/// announce registers: the first incrementer (response 0) wins.
pub fn fetch_add_consensus_system(inputs: [bool; 2]) -> ConsensusSystem {
    let reg = Arc::new(canonical::boolean_register(2));
    let fa = Arc::new(canonical::fetch_and_add(2, 2));
    let v0 = reg.state_id("v0").unwrap();
    let zero = fa.state_id("0").unwrap();
    let read = reg.invocation_id("read").unwrap().index() as i64;
    let write_inv = |v: bool| {
        reg.invocation_id(if v { "write1" } else { "write0" })
            .unwrap()
            .index() as i64
    };
    let fadd = fa.invocation_id("fetch_add").unwrap().index() as i64;
    let announce = |p: usize| {
        let mut ports = vec![None, None];
        ports[p] = Some(PortId::new(0));
        ports[1 - p] = Some(PortId::new(1));
        ObjectInstance::new(Arc::clone(&reg), v0, ports)
    };
    let objects = vec![
        announce(0),
        announce(1),
        ObjectInstance::identity_ports(fa, zero, 2),
    ];
    let program = |me: usize, input: bool| {
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        let won = b.var("won");
        let lose = b.fresh_label();
        b.invoke(me as i64, write_inv(input), None);
        b.invoke(2_i64, fadd, Some(r));
        b.compute(won, r, BinOp::Eq, 0_i64);
        b.jump_if_zero(won, lose);
        b.ret(i64::from(input));
        b.bind(lose);
        b.invoke(1 - me as i64, read, Some(r));
        decide_register_value(&mut b, r);
        b.build().expect("well-formed protocol program")
    };
    ConsensusSystem {
        system: System::new(objects, vec![program(0, inputs[0]), program(1, inputs[1])]),
        registers: vec![
            SrswRegisterInfo {
                obj: 0,
                writer_process: 0,
                reader_process: 1,
                init: false,
            },
            SrswRegisterInfo {
                obj: 1,
                writer_process: 1,
                reader_process: 0,
                init: false,
            },
        ],
        inputs: inputs.to_vec(),
    }
}

/// Two-process consensus from a FIFO queue pre-filled with one token and
/// two SRSW announce registers (Herlihy \[7\]): the process that dequeues
/// the token wins.
pub fn queue_consensus_system(inputs: [bool; 2]) -> ConsensusSystem {
    let reg = Arc::new(canonical::boolean_register(2));
    let queue = Arc::new(canonical::queue(1, 1, 2));
    let v0 = reg.state_id("v0").unwrap();
    let token = queue.state_id("⟨0⟩").unwrap();
    let read = reg.invocation_id("read").unwrap().index() as i64;
    let write_inv = |v: bool| {
        reg.invocation_id(if v { "write1" } else { "write0" })
            .unwrap()
            .index() as i64
    };
    let deq = queue.invocation_id("deq").unwrap().index() as i64;
    let token_resp = queue.response_id("0").unwrap().index() as i64;
    let announce = |p: usize| {
        let mut ports = vec![None, None];
        ports[p] = Some(PortId::new(0));
        ports[1 - p] = Some(PortId::new(1));
        ObjectInstance::new(Arc::clone(&reg), v0, ports)
    };
    let objects = vec![
        announce(0),
        announce(1),
        ObjectInstance::identity_ports(queue, token, 2),
    ];
    let program = |me: usize, input: bool| {
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        let won = b.var("won");
        let lose = b.fresh_label();
        b.invoke(me as i64, write_inv(input), None);
        b.invoke(2_i64, deq, Some(r));
        b.compute(won, r, BinOp::Eq, token_resp);
        b.jump_if_zero(won, lose);
        b.ret(i64::from(input));
        b.bind(lose);
        b.invoke(1 - me as i64, read, Some(r));
        decide_register_value(&mut b, r);
        b.build().expect("well-formed protocol program")
    };
    ConsensusSystem {
        system: System::new(objects, vec![program(0, inputs[0]), program(1, inputs[1])]),
        registers: vec![
            SrswRegisterInfo {
                obj: 0,
                writer_process: 0,
                reader_process: 1,
                init: false,
            },
            SrswRegisterInfo {
                obj: 1,
                writer_process: 1,
                reader_process: 0,
                init: false,
            },
        ],
        inputs: inputs.to_vec(),
    }
}

/// Two-process consensus from a LIFO stack pre-filled with one token and
/// two SRSW announce registers: the process that pops the token wins —
/// the stack twin of [`queue_consensus_system`].
pub fn stack_consensus_system(inputs: [bool; 2]) -> ConsensusSystem {
    let reg = Arc::new(canonical::boolean_register(2));
    let stack = Arc::new(canonical::stack(1, 1, 2));
    let v0 = reg.state_id("v0").unwrap();
    let token = stack.state_id("\u{27e8}0\u{27e9}").unwrap();
    let read = reg.invocation_id("read").unwrap().index() as i64;
    let write_inv = |v: bool| {
        reg.invocation_id(if v { "write1" } else { "write0" })
            .unwrap()
            .index() as i64
    };
    let pop = stack.invocation_id("pop").unwrap().index() as i64;
    let token_resp = stack.response_id("0").unwrap().index() as i64;
    let announce = |p: usize| {
        let mut ports = vec![None, None];
        ports[p] = Some(PortId::new(0));
        ports[1 - p] = Some(PortId::new(1));
        ObjectInstance::new(Arc::clone(&reg), v0, ports)
    };
    let objects = vec![
        announce(0),
        announce(1),
        ObjectInstance::identity_ports(stack, token, 2),
    ];
    let program = |me: usize, input: bool| {
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        let won = b.var("won");
        let lose = b.fresh_label();
        b.invoke(me as i64, write_inv(input), None);
        b.invoke(2_i64, pop, Some(r));
        b.compute(won, r, BinOp::Eq, token_resp);
        b.jump_if_zero(won, lose);
        b.ret(i64::from(input));
        b.bind(lose);
        b.invoke(1 - me as i64, read, Some(r));
        decide_register_value(&mut b, r);
        b.build().expect("well-formed protocol program")
    };
    ConsensusSystem {
        system: System::new(objects, vec![program(0, inputs[0]), program(1, inputs[1])]),
        registers: vec![
            SrswRegisterInfo {
                obj: 0,
                writer_process: 0,
                reader_process: 1,
                init: false,
            },
            SrswRegisterInfo {
                obj: 1,
                writer_process: 1,
                reader_process: 0,
                init: false,
            },
        ],
        inputs: inputs.to_vec(),
    }
}

/// Two-process consensus from one swap register and two SRSW announce
/// registers: each process swaps a marker into the cell; whoever gets
/// the initial value back went first and wins (Herlihy \[7\]).
pub fn swap_consensus_system(inputs: [bool; 2]) -> ConsensusSystem {
    let reg = Arc::new(canonical::boolean_register(2));
    let swap = Arc::new(canonical::swap(2, 2));
    let v0 = reg.state_id("v0").unwrap();
    let swap_init = swap.state_id("v0").unwrap();
    let read = reg.invocation_id("read").unwrap().index() as i64;
    let write_inv = |v: bool| {
        reg.invocation_id(if v { "write1" } else { "write0" })
            .unwrap()
            .index() as i64
    };
    // Both processes swap in the marker value 1; response 0 = "the cell
    // still held the initial value" = first = winner.
    let swap1 = swap.invocation_id("swap1").unwrap().index() as i64;
    let announce = |p: usize| {
        let mut ports = vec![None, None];
        ports[p] = Some(PortId::new(0));
        ports[1 - p] = Some(PortId::new(1));
        ObjectInstance::new(Arc::clone(&reg), v0, ports)
    };
    let objects = vec![
        announce(0),
        announce(1),
        ObjectInstance::identity_ports(swap, swap_init, 2),
    ];
    let program = |me: usize, input: bool| {
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        let won = b.var("won");
        let lose = b.fresh_label();
        b.invoke(me as i64, write_inv(input), None);
        b.invoke(2_i64, swap1, Some(r));
        b.compute(won, r, BinOp::Eq, 0_i64);
        b.jump_if_zero(won, lose);
        b.ret(i64::from(input));
        b.bind(lose);
        b.invoke(1 - me as i64, read, Some(r));
        decide_register_value(&mut b, r);
        b.build().expect("well-formed protocol program")
    };
    ConsensusSystem {
        system: System::new(objects, vec![program(0, inputs[0]), program(1, inputs[1])]),
        registers: vec![
            SrswRegisterInfo {
                obj: 0,
                writer_process: 0,
                reader_process: 1,
                init: false,
            },
            SrswRegisterInfo {
                obj: 1,
                writer_process: 1,
                reader_process: 0,
                init: false,
            },
        ],
        inputs: inputs.to_vec(),
    }
}

/// Two-process consensus from one 2-bit shift register (init `"01"`) and
/// two SRSW announce registers (Aspnes 2025: consensus number of a
/// `w`-bit shift register is exactly `w`).
///
/// Process 0 shifts **left**, process 1 shifts **right**; each shift
/// returns the new contents, which encode who moved first:
///
/// * P0 first: `"01" —shl→ "10"` (P0 sees `10`, wins); a later
///   `shr` yields `"01"` (P1 sees `01`, loses).
/// * P1 first: `"01" —shr→ "00"` (P1 sees `00`, wins); a later
///   `shl` stays `"00"` (P0 sees `00`, loses).
///
/// The winner decides its own input; the loser reads the winner's
/// announce register.
pub fn shift2_consensus_system(inputs: [bool; 2]) -> ConsensusSystem {
    let reg = Arc::new(canonical::boolean_register(2));
    let shift = Arc::new(canonical::shift_register(2, 2));
    let v0 = reg.state_id("v0").unwrap();
    let init = shift.state_id("01").unwrap();
    let read = reg.invocation_id("read").unwrap().index() as i64;
    let write_inv = |v: bool| {
        reg.invocation_id(if v { "write1" } else { "write0" })
            .unwrap()
            .index() as i64
    };
    let shl = shift.invocation_id("shl").unwrap().index() as i64;
    let shr = shift.invocation_id("shr").unwrap().index() as i64;
    // Losing responses: P0's shl yields "00" iff P1 shifted first;
    // P1's shr yields "01" iff P0 shifted first.
    let resp = |name: &str| shift.response_id(name).unwrap().index() as i64;
    let lost_resp = [resp("00"), resp("01")];
    let announce = |p: usize| {
        let mut ports = vec![None, None];
        ports[p] = Some(PortId::new(0));
        ports[1 - p] = Some(PortId::new(1));
        ObjectInstance::new(Arc::clone(&reg), v0, ports)
    };
    let objects = vec![
        announce(0),
        announce(1),
        ObjectInstance::identity_ports(shift, init, 2),
    ];
    let program = |me: usize, input: bool| {
        let op = if me == 0 { shl } else { shr };
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        let lost = b.var("lost");
        let win = b.fresh_label();
        b.invoke(me as i64, write_inv(input), None);
        b.invoke(2_i64, op, Some(r));
        b.compute(lost, r, BinOp::Eq, lost_resp[me]);
        b.jump_if_zero(lost, win);
        b.invoke(1 - me as i64, read, Some(r));
        b.ret(r);
        b.bind(win);
        b.ret(i64::from(input));
        b.build().expect("well-formed protocol program")
    };
    ConsensusSystem {
        system: System::new(objects, vec![program(0, inputs[0]), program(1, inputs[1])]),
        registers: vec![
            SrswRegisterInfo {
                obj: 0,
                writer_process: 0,
                reader_process: 1,
                init: false,
            },
            SrswRegisterInfo {
                obj: 1,
                writer_process: 1,
                reader_process: 0,
                init: false,
            },
        ],
        inputs: inputs.to_vec(),
    }
}

/// Two-process consensus from one MPR 2-sliding-window register (init
/// `"⟨⟩"`) and two SRSW announce registers (Mostéfaoui–Perrin–Raynal:
/// the `k`-sliding-window register has consensus number exactly `k`).
///
/// Each process appends its identity as a marker (`write0` for P0,
/// `write1` for P1) and reads the window; with at most two writes the
/// window's **oldest** entry names the first writer, who wins. P0 lost
/// iff it reads `⟨1,0⟩`; P1 lost iff it reads `⟨0,1⟩`. The loser reads
/// the winner's announce register.
pub fn mpr2_consensus_system(inputs: [bool; 2]) -> ConsensusSystem {
    let reg = Arc::new(canonical::boolean_register(2));
    let mpr = Arc::new(canonical::mpr(2, 2));
    let v0 = reg.state_id("v0").unwrap();
    let empty = mpr.state_id("⟨⟩").unwrap();
    let read = reg.invocation_id("read").unwrap().index() as i64;
    let write_inv = |v: bool| {
        reg.invocation_id(if v { "write1" } else { "write0" })
            .unwrap()
            .index() as i64
    };
    let mark = [
        mpr.invocation_id("write0").unwrap().index() as i64,
        mpr.invocation_id("write1").unwrap().index() as i64,
    ];
    let window_read = mpr.invocation_id("read").unwrap().index() as i64;
    let resp = |name: &str| mpr.response_id(name).unwrap().index() as i64;
    let lost_resp = [resp("⟨1,0⟩"), resp("⟨0,1⟩")];
    let announce = |p: usize| {
        let mut ports = vec![None, None];
        ports[p] = Some(PortId::new(0));
        ports[1 - p] = Some(PortId::new(1));
        ObjectInstance::new(Arc::clone(&reg), v0, ports)
    };
    let objects = vec![
        announce(0),
        announce(1),
        ObjectInstance::identity_ports(mpr, empty, 2),
    ];
    let program = |me: usize, input: bool| {
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        let lost = b.var("lost");
        let win = b.fresh_label();
        b.invoke(me as i64, write_inv(input), None);
        b.invoke(2_i64, mark[me], None);
        b.invoke(2_i64, window_read, Some(r));
        b.compute(lost, r, BinOp::Eq, lost_resp[me]);
        b.jump_if_zero(lost, win);
        b.invoke(1 - me as i64, read, Some(r));
        b.ret(r);
        b.bind(win);
        b.ret(i64::from(input));
        b.build().expect("well-formed protocol program")
    };
    ConsensusSystem {
        system: System::new(objects, vec![program(0, inputs[0]), program(1, inputs[1])]),
        registers: vec![
            SrswRegisterInfo {
                obj: 0,
                writer_process: 0,
                reader_process: 1,
                init: false,
            },
            SrswRegisterInfo {
                obj: 1,
                writer_process: 1,
                reader_process: 0,
                init: false,
            },
        ],
        inputs: inputs.to_vec(),
    }
}

/// `n`-process consensus from a single compare-and-swap object — **no
/// registers** (`h_1(CAS) = ∞`, Herlihy \[7\]).
///
/// The CAS cell ranges over `{empty, decided-0, decided-1}`; a proposer
/// CASes `empty → decided-v` and decodes the response.
pub fn cas_consensus_system(inputs: &[bool]) -> ConsensusSystem {
    let n = inputs.len();
    let cas = Arc::new(canonical::compare_and_swap(3, n));
    let empty = cas.state_id("v0").unwrap();
    let objects = vec![ObjectInstance::identity_ports(Arc::clone(&cas), empty, n)];
    let program = |input: bool| {
        // cas0_{v+1}: install decided-v if empty.
        let inv = cas
            .invocation_id(&format!("cas0_{}", 1 + usize::from(input)))
            .unwrap()
            .index() as i64;
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        let was_empty = b.var("was_empty");
        let taken = b.fresh_label();
        b.invoke(0_i64, inv, Some(r));
        b.compute(was_empty, r, BinOp::Eq, 0_i64);
        b.jump_if_zero(was_empty, taken);
        b.ret(i64::from(input));
        b.bind(taken);
        // Response k (k ≥ 1) means the cell held decided-(k-1).
        let dec = b.var("dec");
        b.compute(dec, r, BinOp::Sub, 1_i64);
        b.ret(dec);
        b.build().expect("well-formed protocol program")
    };
    ConsensusSystem {
        system: System::new(objects, inputs.iter().map(|&i| program(i)).collect()),
        registers: Vec::new(),
        inputs: inputs.to_vec(),
    }
}

/// `n`-process binary consensus from a single sticky bit — **no
/// registers** (Plotkin \[19\]).
pub fn sticky_consensus_system(inputs: &[bool]) -> ConsensusSystem {
    let n = inputs.len();
    let sticky = Arc::new(canonical::sticky_bit(n));
    let bot = sticky.state_id("⊥").unwrap();
    let objects = vec![ObjectInstance::identity_ports(Arc::clone(&sticky), bot, n)];
    let program = |input: bool| {
        let inv = sticky
            .invocation_id(if input { "write1" } else { "write0" })
            .unwrap()
            .index() as i64;
        let resp0 = sticky.response_id("0").unwrap().index() as i64;
        let mut b = ProgramBuilder::new();
        let r = b.var("r");
        let dec = b.var("dec");
        b.invoke(0_i64, inv, Some(r));
        // Responses: "0" or "1" (⊥ impossible for a write); decode.
        b.compute(dec, r, BinOp::Sub, resp0);
        b.ret(dec);
        b.build().expect("well-formed protocol program")
    };
    ConsensusSystem {
        system: System::new(objects, inputs.iter().map(|&i| program(i)).collect()),
        registers: Vec::new(),
        inputs: inputs.to_vec(),
    }
}

/// `n`-process consensus from one compare-and-swap object **plus**
/// `n·(n-1)` SRSW boolean announce registers.
///
/// Unlike [`cas_consensus_system`] (which needs no registers), this
/// variant deliberately routes the winner's *value* through registers:
/// each process writes its input to a dedicated register per peer, then
/// CASes its own *identity* into the cell; losers learn the winner's
/// identity from the CAS response and read the winner's announcement
/// addressed to them. Every register has exactly one writer and one
/// reader, which makes the protocol a register-elimination target at
/// `n > 2` — the stress case for the Theorem 5 compiler.
pub fn cas_announce_consensus_system(inputs: &[bool]) -> ConsensusSystem {
    let n = inputs.len();
    assert!(n >= 2, "consensus needs at least two processes");
    let reg = Arc::new(canonical::boolean_register(2));
    // CAS over n + 1 values: v0 = empty, v_{1+p} = "process p won".
    let cas = Arc::new(canonical::compare_and_swap(n + 1, n));
    let v0 = reg.state_id("v0").unwrap();
    let empty = cas.state_id("v0").unwrap();
    let read = reg.invocation_id("read").unwrap().index() as i64;
    let write_inv = |v: bool| {
        reg.invocation_id(if v { "write1" } else { "write0" })
            .unwrap()
            .index() as i64
    };
    // Object layout: 0 = CAS; then registers announce[w→r] for each
    // ordered pair w ≠ r, indexed row-major skipping the diagonal.
    let mut objects = vec![ObjectInstance::identity_ports(Arc::clone(&cas), empty, n)];
    let mut registers = Vec::new();
    let mut reg_index = vec![vec![usize::MAX; n]; n];
    for w in 0..n {
        for r in 0..n {
            if w == r {
                continue;
            }
            let mut ports = vec![None; n];
            ports[w] = Some(PortId::new(0));
            ports[r] = Some(PortId::new(1));
            reg_index[w][r] = objects.len();
            registers.push(SrswRegisterInfo {
                obj: objects.len(),
                writer_process: w,
                reader_process: r,
                init: false,
            });
            objects.push(ObjectInstance::new(Arc::clone(&reg), v0, ports));
        }
    }
    let programs = (0..n)
        .map(|me| {
            let input = inputs[me];
            // cas0_{me+1}: claim the cell for my identity.
            let claim = cas
                .invocation_id(&format!("cas0_{}", me + 1))
                .unwrap()
                .index() as i64;
            let mut b = ProgramBuilder::new();
            let r = b.var("r");
            let won = b.var("won");
            // Announce my input to every peer.
            #[allow(clippy::needless_range_loop)] // peer indexes reg_index[me][peer]
            for peer in 0..n {
                if peer != me {
                    b.invoke(reg_index[me][peer] as i64, write_inv(input), None);
                }
            }
            b.invoke(0_i64, claim, Some(r));
            let lose = b.fresh_label();
            b.compute(won, r, BinOp::Eq, 0_i64);
            b.jump_if_zero(won, lose);
            b.ret(i64::from(input));
            b.bind(lose);
            // Response k ≥ 1 means process k-1 won; read its announcement
            // to me. The winner index is dynamic, so compute the register
            // object index from a jump table over peers.
            let done = b.fresh_label();
            let winner_is = |b: &mut ProgramBuilder, r: Var, peer: usize| {
                let t = b.var("t");
                b.compute(t, r, BinOp::Eq, (peer + 1) as i64);
                t
            };
            #[allow(clippy::needless_range_loop)] // peer indexes reg_index[peer][me]
            for peer in 0..n {
                if peer == me {
                    continue;
                }
                let next = b.fresh_label();
                let t = winner_is(&mut b, r, peer);
                b.jump_if_zero(t, next);
                let v = b.var("v");
                b.invoke(reg_index[peer][me] as i64, read, Some(v));
                b.copy(r, v);
                b.jump(done);
                b.bind(next);
            }
            // Unreachable fallback (the winner is always some peer here).
            b.copy(r, 0_i64);
            b.bind(done);
            // Register responses "0"/"1" are numbered 0/1: decide directly.
            b.ret(r);
            b.build().expect("well-formed protocol program")
        })
        .collect();
    ConsensusSystem {
        system: System::new(objects, programs),
        registers,
        inputs: inputs.to_vec(),
    }
}

/// The verdict of model-checking a consensus protocol over all `2^n`
/// input vectors.
#[derive(Clone, Debug)]
pub struct ProtocolVerdict {
    /// Per-input-vector execution-tree depth `d` (the paper's Section 4.2).
    pub depth_per_tree: Vec<usize>,
    /// The paper's bound `D = max d` over all trees.
    pub d_max: usize,
    /// Total configurations across all trees.
    pub total_configs: usize,
    /// `true` if every tree satisfied agreement.
    pub agreement: bool,
    /// `true` if every tree satisfied validity.
    pub validity: bool,
}

impl ProtocolVerdict {
    /// `true` if the protocol is a correct wait-free consensus
    /// implementation (wait-freedom is implied: exploration fails
    /// otherwise).
    pub fn holds(&self) -> bool {
        self.agreement && self.validity
    }
}

/// Model-checks a consensus protocol builder over **all** `2^n` input
/// vectors: wait-freedom, agreement, and validity in every execution.
///
/// # Errors
///
/// Propagates exploration failures — in particular
/// [`ExplorerError::NotWaitFree`] when some interleaving never terminates.
pub fn verify_consensus_protocol(
    n: usize,
    build: impl Fn(&[bool]) -> ConsensusSystem + Sync,
    opts: &ExploreOptions,
) -> Result<ProtocolVerdict, ExplorerError> {
    let _span = wfc_obs::span::enter_lazy(opts.obs.spans, "verify_consensus_protocol", || {
        format!("n={n}")
    });
    if opts.obs.metrics {
        wfc_obs::metrics::Registry::global()
            .counter("consensus.protocol_verifications")
            .add(1);
    }
    let vectors = binary_input_vectors(n);
    let threads = opts.effective_threads();
    // With several vectors in flight, run each tree single-threaded —
    // the outer fan-out already fills the pool.
    let inner = if threads > 1 {
        opts.with_threads(1)
    } else {
        *opts
    };
    let per_tree = wfc_explorer::pool::parallel_map(
        threads,
        &vectors,
        |inputs| -> Result<(usize, usize, bool, bool), ExplorerError> {
            let cs = build(inputs);
            let e = explore(&cs.system, &inner)?;
            let allowed: Vec<i64> = inputs.iter().map(|&b| i64::from(b)).collect();
            Ok((
                e.depth,
                e.configs,
                e.decisions_agree(),
                e.decisions_within(&allowed),
            ))
        },
    );

    // Merge in lexicographic input order (the order of `vectors`), so
    // the verdict — including which error surfaces — is identical no
    // matter how the trees were scheduled.
    let mut depth_per_tree = Vec::new();
    let mut total_configs = 0;
    let mut agreement = true;
    let mut validity = true;
    for tree in per_tree {
        let (depth, configs, agrees, valid) = tree?;
        depth_per_tree.push(depth);
        total_configs += configs;
        agreement &= agrees;
        validity &= valid;
    }
    Ok(ProtocolVerdict {
        d_max: depth_per_tree.iter().copied().max().unwrap_or(0),
        depth_per_tree,
        total_configs,
        agreement,
        validity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_vectors_enumerate_the_hypercube() {
        let vs = binary_input_vectors(3);
        assert_eq!(vs.len(), 8);
        assert_eq!(vs[0], vec![false, false, false]);
        assert_eq!(vs[7], vec![true, true, true]);
    }

    #[test]
    fn tas_protocol_is_correct_consensus() {
        let v = verify_consensus_protocol(
            2,
            |i| tas_consensus_system([i[0], i[1]]),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(v.holds(), "{v:?}");
        // Winner path: write + TAS = 2 accesses; loser: write + TAS +
        // read = 3; D = 5 across both processes.
        assert_eq!(v.d_max, 5);
    }

    #[test]
    fn fetch_add_protocol_is_correct_consensus() {
        let v = verify_consensus_protocol(
            2,
            |i| fetch_add_consensus_system([i[0], i[1]]),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(v.holds(), "{v:?}");
    }

    #[test]
    fn queue_protocol_is_correct_consensus() {
        let v = verify_consensus_protocol(
            2,
            |i| queue_consensus_system([i[0], i[1]]),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(v.holds(), "{v:?}");
    }

    #[test]
    fn cas_protocol_is_correct_for_three_processes() {
        let v =
            verify_consensus_protocol(3, cas_consensus_system, &ExploreOptions::default()).unwrap();
        assert!(v.holds(), "{v:?}");
        assert_eq!(v.d_max, 3, "one access per process");
    }

    #[test]
    fn sticky_protocol_is_correct_for_three_processes() {
        let v = verify_consensus_protocol(3, sticky_consensus_system, &ExploreOptions::default())
            .unwrap();
        assert!(v.holds(), "{v:?}");
    }

    #[test]
    fn stack_protocol_is_correct_consensus() {
        let v = verify_consensus_protocol(
            2,
            |i| stack_consensus_system([i[0], i[1]]),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(v.holds(), "{v:?}");
    }

    #[test]
    fn swap_protocol_is_correct_consensus() {
        let v = verify_consensus_protocol(
            2,
            |i| swap_consensus_system([i[0], i[1]]),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(v.holds(), "{v:?}");
    }

    #[test]
    fn shift2_protocol_is_correct_consensus() {
        let v = verify_consensus_protocol(
            2,
            |i| shift2_consensus_system([i[0], i[1]]),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(v.holds(), "{v:?}");
        // Winner: write + shift = 2 accesses; loser: write + shift +
        // read = 3; D = 5 across both processes.
        assert_eq!(v.d_max, 5);
    }

    #[test]
    fn mpr2_protocol_is_correct_consensus() {
        let v = verify_consensus_protocol(
            2,
            |i| mpr2_consensus_system([i[0], i[1]]),
            &ExploreOptions::default(),
        )
        .unwrap();
        assert!(v.holds(), "{v:?}");
    }

    #[test]
    fn cas_announce_protocol_is_correct_for_two_and_three_processes() {
        for n in 2..=3 {
            let v = verify_consensus_protocol(
                n,
                cas_announce_consensus_system,
                &ExploreOptions::default(),
            )
            .unwrap();
            assert!(v.holds(), "n = {n}: {v:?}");
        }
    }

    #[test]
    fn cas_announce_registers_are_all_srsw_pairs() {
        let cs = cas_announce_consensus_system(&[true, false, true]);
        assert_eq!(cs.registers.len(), 6, "n·(n-1) ordered pairs");
        for info in &cs.registers {
            assert_ne!(info.writer_process, info.reader_process);
        }
    }

    #[test]
    fn register_annotations_point_at_registers() {
        let cs = tas_consensus_system([true, false]);
        assert_eq!(cs.registers.len(), 2);
        for r in &cs.registers {
            let obj = &cs.system.objects()[r.obj];
            assert!(obj.ty().name().starts_with("register"));
        }
        assert!(cas_consensus_system(&[true, false]).registers.is_empty());
    }

    /// A deliberately broken protocol (no announce) violates agreement —
    /// the checker must catch it.
    #[test]
    fn broken_protocol_is_caught() {
        let broken = |inputs: &[bool]| {
            let mut cs = tas_consensus_system([inputs[0], inputs[1]]);
            // Sabotage: replace programs with "decide own input".
            let programs: Vec<_> = inputs
                .iter()
                .map(|&i| {
                    let mut b = ProgramBuilder::new();
                    b.ret(i64::from(i));
                    b.build().unwrap()
                })
                .collect();
            cs.system = System::new(cs.system.objects().to_vec(), programs);
            cs
        };
        let v = verify_consensus_protocol(2, broken, &ExploreOptions::default()).unwrap();
        assert!(!v.agreement);
    }
}
