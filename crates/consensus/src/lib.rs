//! # `wfc-consensus` — wait-free consensus protocols and universality
//!
//! The consensus substrate of the reproduction: the classical protocols
//! whose existence the paper leans on, in two parallel renditions.
//!
//! * [`native`](crate::cas_consensus) — real lock-free protocols over
//!   atomics and `wfc-registers` handles: [`cas_consensus`],
//!   [`tas_consensus_2`], [`fetch_add_consensus_2`],
//!   [`queue_consensus_2`], [`sticky_consensus`].
//! * spec protocols — the same protocols as model-checkable
//!   `wfc-explorer` systems, with their register objects annotated for
//!   the Theorem 5 eliminator, plus [`verify_consensus_protocol`], which
//!   checks wait-freedom, agreement and validity over all `2^n` input
//!   vectors and reports the paper's Section 4.2 depth bound `D`.
//! * [`UniversalObject`] — Herlihy's universal construction
//!   (Section 2.3): consensus objects + registers implement *any* finite
//!   type, wait-free, via an agreed log with helping.
//!
//! ## Example
//!
//! ```
//! use wfc_consensus::{verify_consensus_protocol, tas_consensus_system};
//! use wfc_explorer::ExploreOptions;
//!
//! let verdict = verify_consensus_protocol(
//!     2,
//!     |i| tas_consensus_system([i[0], i[1]]),
//!     &ExploreOptions::default(),
//! )?;
//! assert!(verdict.holds());
//! assert_eq!(verdict.d_max, 5); // the paper's D for this implementation
//! # Ok::<(), wfc_explorer::ExplorerError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod native;
mod spec_protocols;
mod universal;

pub use native::{
    cas_consensus, fetch_add_consensus_2, queue_consensus_2, sticky_consensus, tas_consensus_2,
    CasProposer, FetchAddProposer, Proposer, QueueProposer, StickyProposer, TasProposer,
};
pub use spec_protocols::{
    binary_input_vectors, cas_announce_consensus_system, cas_consensus_system,
    fetch_add_consensus_system, mpr2_consensus_system, queue_consensus_system,
    shift2_consensus_system, stack_consensus_system, sticky_consensus_system,
    swap_consensus_system, tas_consensus_system, verify_consensus_protocol, ConsensusSystem,
    ProtocolVerdict, SrswRegisterInfo,
};
pub use universal::{UniversalHandle, UniversalObject};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<crate::CasProposer>();
        assert_send::<crate::UniversalHandle>();
        assert_send::<crate::ConsensusSystem>();
    }
}
