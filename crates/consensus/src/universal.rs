//! Herlihy's universal construction (paper, Section 2.3; Herlihy \[7\]).
//!
//! Consensus is *universal*: consensus objects plus registers wait-free
//! implement any type. This module realises the classical construction
//! for `wfc-spec` finite types: operations are agreed into a shared log,
//! one consensus object per log slot, and every process deterministically
//! replays the log to compute responses.
//!
//! Wait-freedom comes from *helping*: each process announces its pending
//! operation in a register, and the convention that slot `k` prefers the
//! announced operation of process `k mod n` guarantees that an announced
//! operation is adopted within `n` slot decisions.
//!
//! The consensus objects here are CAS cells (consensus number ∞) and the
//! announce array is a register — exactly the "consensus + registers"
//! recipe of the cited theorem. The log is pre-allocated with a fixed
//! capacity; a real system would grow it, but unbounded allocation is
//! outside the paper's model.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use wfc_spec::{FiniteType, InvId, PortId, RespId, StateId};

/// Encodes (process, invocation, sequence) into a nonzero u64 log entry.
fn encode(process: usize, inv: InvId, seq: u32) -> u64 {
    1 + ((process as u64) << 48 | (inv.index() as u64) << 32 | seq as u64)
}

fn decode(entry: u64) -> (usize, InvId, u32) {
    let e = entry - 1;
    (
        (e >> 48) as usize,
        InvId::new(((e >> 32) & 0xFFFF) as usize),
        (e & 0xFFFF_FFFF) as u32,
    )
}

#[derive(Debug)]
struct Shared {
    ty: Arc<FiniteType>,
    init: StateId,
    /// Log slots: 0 = undecided, otherwise an encoded operation. Each slot
    /// is a one-shot CAS consensus object.
    log: Vec<AtomicU64>,
    /// announce[p]: p's pending encoded operation (0 = none).
    announce: Vec<AtomicU64>,
}

/// A wait-free linearizable object of an arbitrary finite type, built
/// from consensus objects and registers.
#[derive(Debug)]
pub struct UniversalObject {
    shared: Arc<Shared>,
}

impl UniversalObject {
    /// Creates a universal implementation of `ty` starting at `init`,
    /// capable of `capacity` total operations.
    ///
    /// # Panics
    ///
    /// Panics if `init` is out of range.
    pub fn new(ty: Arc<FiniteType>, init: StateId, capacity: usize) -> Self {
        assert!(
            init.index() < ty.state_count(),
            "initial state out of range"
        );
        let n = ty.ports();
        UniversalObject {
            shared: Arc::new(Shared {
                init,
                log: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
                announce: (0..n).map(|_| AtomicU64::new(0)).collect(),
                ty,
            }),
        }
    }

    /// Consumes the object, returning one handle per port.
    pub fn ports(self) -> Vec<UniversalHandle> {
        (0..self.shared.ty.ports())
            .map(|p| UniversalHandle {
                shared: Arc::clone(&self.shared),
                port: PortId::new(p),
                seq: 0,
            })
            .collect()
    }
}

/// Per-process handle on a [`UniversalObject`].
#[derive(Debug)]
pub struct UniversalHandle {
    shared: Arc<Shared>,
    port: PortId,
    seq: u32,
}

impl UniversalHandle {
    /// The port this handle owns.
    pub fn port(&self) -> PortId {
        self.port
    }

    /// Applies `inv` to the shared object and returns its response.
    ///
    /// Wait-free: completes within `O(n + log length)` steps of the
    /// caller thanks to the helping rule.
    ///
    /// # Panics
    ///
    /// Panics if the pre-allocated log capacity is exhausted or `inv` is
    /// out of range. For nondeterministic types the replay resolves each
    /// outcome set to its first element so that all processes agree on
    /// the replayed state.
    pub fn invoke(&mut self, inv: InvId) -> RespId {
        let me = self.port.index();
        let n = self.shared.announce.len();
        self.seq += 1;
        let my_op = encode(me, inv, self.seq);
        self.shared.announce[me].store(my_op, Ordering::SeqCst);
        // Find the first undecided slot we could possibly land in.
        let mut k = 0;
        loop {
            assert!(
                k < self.shared.log.len(),
                "universal log capacity exhausted"
            );
            let slot = &self.shared.log[k];
            let current = slot.load(Ordering::SeqCst);
            if current == 0 {
                // Helping rule: slot k belongs first to process k mod n's
                // announced operation, if it has one still pending.
                let preferred_owner = k % n;
                let announced = self.shared.announce[preferred_owner].load(Ordering::SeqCst);
                let candidate = if announced != 0 && !self.applied_before(announced, k) {
                    announced
                } else {
                    my_op
                };
                let _ = slot.compare_exchange(0, candidate, Ordering::SeqCst, Ordering::SeqCst);
                // Re-read; someone (possibly us) decided the slot.
            }
            let decided = slot.load(Ordering::SeqCst);
            debug_assert_ne!(decided, 0);
            if decided == my_op {
                self.shared.announce[me].store(0, Ordering::SeqCst);
                return self.replay_response(k);
            }
            k += 1;
        }
    }

    /// Convenience: invoke by name, returning the response name.
    ///
    /// # Panics
    ///
    /// Panics if `inv` is not an invocation of the type.
    pub fn invoke_named(&mut self, inv: &str) -> String {
        let ty = Arc::clone(&self.shared.ty);
        let inv = ty
            .invocation_id(inv)
            .unwrap_or_else(|| panic!("no invocation `{inv}` on {}", ty.name()));
        ty.response_name(self.invoke(inv)).to_owned()
    }

    /// Has `op` already been installed in log slots `0..limit`?
    fn applied_before(&self, op: u64, limit: usize) -> bool {
        self.shared.log[..limit]
            .iter()
            .any(|slot| slot.load(Ordering::SeqCst) == op)
    }

    /// Replays the log through slot `upto` and returns the response of
    /// the operation decided there.
    fn replay_response(&self, upto: usize) -> RespId {
        let ty = &self.shared.ty;
        let mut state = self.shared.init;
        let mut resp = None;
        for slot in &self.shared.log[..=upto] {
            let entry = slot.load(Ordering::SeqCst);
            debug_assert_ne!(entry, 0, "prefix of a decided slot is decided");
            let (proc, inv, _seq) = decode(entry);
            // Deterministic replay: resolve nondeterminism to the first
            // outcome so all processes compute identical states.
            let out = ty.outcomes(state, PortId::new(proc), inv)[0];
            state = out.next;
            resp = Some(out.resp);
        }
        resp.expect("replay covered at least one slot")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfc_runtime::run_threads;
    use wfc_spec::canonical;

    #[test]
    fn encode_decode_round_trips() {
        let e = encode(3, InvId::new(7), 42);
        assert_eq!(decode(e), (3, InvId::new(7), 42));
        assert_ne!(e, 0);
    }

    #[test]
    fn sequential_queue_behaviour() {
        let ty = Arc::new(canonical::queue(2, 2, 2));
        let init = ty.state_id("⟨⟩").unwrap();
        let obj = UniversalObject::new(Arc::clone(&ty), init, 64);
        let mut hs = obj.ports();
        assert_eq!(hs[0].invoke_named("enq1"), "ok");
        assert_eq!(hs[1].invoke_named("enq0"), "ok");
        assert_eq!(hs[0].invoke_named("deq"), "1", "FIFO order");
        assert_eq!(hs[1].invoke_named("deq"), "0");
        assert_eq!(hs[0].invoke_named("deq"), "empty");
    }

    #[test]
    fn concurrent_tas_has_one_winner() {
        for _ in 0..20 {
            let ty = Arc::new(canonical::test_and_set(4));
            let init = ty.state_id("unset").unwrap();
            let obj = UniversalObject::new(Arc::clone(&ty), init, 64);
            let results = run_threads(
                obj.ports()
                    .into_iter()
                    .map(|mut h| move || h.invoke_named("test_and_set"))
                    .collect::<Vec<_>>(),
            );
            assert_eq!(
                results.iter().filter(|r| r.as_str() == "0").count(),
                1,
                "exactly one winner: {results:?}"
            );
        }
    }

    #[test]
    fn concurrent_history_linearizes_against_the_type() {
        use wfc_explorer::linearizability::is_linearizable;
        use wfc_runtime::EventLog;

        let ty = Arc::new(canonical::fetch_and_add(8, 3));
        let init = ty.state_id("0").unwrap();
        for _ in 0..10 {
            let obj = UniversalObject::new(Arc::clone(&ty), init, 64);
            let log = EventLog::new();
            let fadd = ty.invocation_id("fetch_add").unwrap();
            run_threads(
                obj.ports()
                    .into_iter()
                    .map(|mut h| {
                        let log = &log;
                        move || {
                            for _ in 0..2 {
                                let t0 = log.stamp();
                                let resp = h.invoke(fadd);
                                let t1 = log.stamp();
                                log.record(h.port(), fadd, resp, t0, t1);
                            }
                        }
                    })
                    .collect::<Vec<_>>(),
            );
            let h = log.take_history();
            assert!(is_linearizable(&ty, init, &h), "history: {h:?}");
        }
    }

    #[test]
    #[should_panic(expected = "capacity exhausted")]
    fn capacity_exhaustion_is_loud() {
        let ty = Arc::new(canonical::test_and_set(2));
        let init = ty.state_id("unset").unwrap();
        let obj = UniversalObject::new(Arc::clone(&ty), init, 1);
        let mut hs = obj.ports();
        let _ = hs[0].invoke_named("read");
        let _ = hs[0].invoke_named("read"); // second op overflows the log
    }
}
