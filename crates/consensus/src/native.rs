//! Native wait-free consensus protocols over real shared objects.
//!
//! One protocol per classical base object, each packaged as a set of
//! per-process [`Proposer`] handles:
//!
//! * [`cas_consensus`] — from compare-and-swap; any number of processes
//!   (consensus number ∞, Herlihy \[7\]).
//! * [`tas_consensus_2`] — from one test-and-set plus two SRSW announce
//!   registers; two processes (consensus number 2).
//! * [`fetch_add_consensus_2`] — from one fetch-and-add plus announce
//!   registers; two processes.
//! * [`queue_consensus_2`] — from one pre-filled FIFO queue plus announce
//!   registers; two processes (Herlihy \[7\]).
//! * [`sticky_consensus`] — from one sticky bit; any number of processes,
//!   binary values (Plotkin \[19\]).
//!
//! The announce registers are deliberately taken from `wfc-registers`'
//! single-reader single-writer atomic cells: these are precisely the
//! "registers" whose dispensability the paper proves (Theorem 5), and the
//! spec-level twins of these protocols in [`crate::spec_protocols`] are
//! what the register-elimination compiler of `wfc-core` transforms.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use wfc_registers::{
    atomic_reg, ArrayQueue, AtomicRegReader, AtomicRegWriter, RegReader, RegWriter,
};

/// A per-process handle on a single-shot consensus object.
///
/// Consuming `self` enforces the one-shot discipline: a process proposes
/// at most once (later invocations of the paper's consensus type return
/// the same value anyway, so the caller can cache the result).
pub trait Proposer: Send {
    /// Proposes `value`; returns the consensus value all processes agree
    /// on. Wait-free: completes in a bounded number of the caller's steps.
    fn propose(self, value: u64) -> u64;
}

/// Consensus for `n` processes from a single compare-and-swap cell.
///
/// The first successful CAS installs its proposer's value; everyone reads
/// the installed value. Returns one handle per process.
///
/// # Examples
///
/// ```
/// use wfc_consensus::{cas_consensus, Proposer};
/// use wfc_runtime::run_threads;
///
/// let handles = cas_consensus(4);
/// let decisions = run_threads(
///     handles
///         .into_iter()
///         .enumerate()
///         .map(|(k, h)| move || h.propose(k as u64))
///         .collect::<Vec<_>>(),
/// );
/// assert!(decisions.windows(2).all(|w| w[0] == w[1]), "agreement");
/// ```
pub fn cas_consensus(n: usize) -> Vec<CasProposer> {
    // 0 encodes "empty"; proposals are stored as value + 1.
    let cell = Arc::new(AtomicU64::new(0));
    (0..n)
        .map(|_| CasProposer {
            cell: Arc::clone(&cell),
        })
        .collect()
}

/// Handle of [`cas_consensus`].
#[derive(Debug)]
pub struct CasProposer {
    cell: Arc<AtomicU64>,
}

impl Proposer for CasProposer {
    fn propose(self, value: u64) -> u64 {
        assert!(value < u64::MAX, "value too large to encode");
        let _ = self
            .cell
            .compare_exchange(0, value + 1, Ordering::AcqRel, Ordering::Acquire);
        self.cell.load(Ordering::Acquire) - 1
    }
}

/// Two-process consensus from one test-and-set bit and two single-reader
/// single-writer announce registers.
///
/// Each process announces its value, then races on the test-and-set; the
/// winner decides its own value, the loser reads the winner's
/// announcement. The winner's announcement necessarily precedes its
/// test-and-set, so the loser's read observes it.
pub fn tas_consensus_2() -> [TasProposer; 2] {
    let tas = Arc::new(AtomicBool::new(false));
    // announce[p] is written by p and read only by 1 - p: SRSW.
    let (w0, r0) = atomic_reg(0u64);
    let (w1, r1) = atomic_reg(0u64);
    [
        TasProposer {
            tas: Arc::clone(&tas),
            announce: w0,
            peer: r1,
        },
        TasProposer {
            tas,
            announce: w1,
            peer: r0,
        },
    ]
}

/// Handle of [`tas_consensus_2`].
#[derive(Debug)]
pub struct TasProposer {
    tas: Arc<AtomicBool>,
    announce: AtomicRegWriter<u64>,
    peer: AtomicRegReader<u64>,
}

impl Proposer for TasProposer {
    fn propose(mut self, value: u64) -> u64 {
        self.announce.write(value);
        let lost = self.tas.swap(true, Ordering::AcqRel);
        if lost {
            self.peer.read()
        } else {
            value
        }
    }
}

/// Two-process consensus from one fetch-and-add counter and announce
/// registers: the process that increments first (sees 0) wins.
pub fn fetch_add_consensus_2() -> [FetchAddProposer; 2] {
    let counter = Arc::new(AtomicU64::new(0));
    let (w0, r0) = atomic_reg(0u64);
    let (w1, r1) = atomic_reg(0u64);
    [
        FetchAddProposer {
            counter: Arc::clone(&counter),
            announce: w0,
            peer: r1,
        },
        FetchAddProposer {
            counter,
            announce: w1,
            peer: r0,
        },
    ]
}

/// Handle of [`fetch_add_consensus_2`].
#[derive(Debug)]
pub struct FetchAddProposer {
    counter: Arc<AtomicU64>,
    announce: AtomicRegWriter<u64>,
    peer: AtomicRegReader<u64>,
}

impl Proposer for FetchAddProposer {
    fn propose(mut self, value: u64) -> u64 {
        self.announce.write(value);
        if self.counter.fetch_add(1, Ordering::AcqRel) == 0 {
            value
        } else {
            self.peer.read()
        }
    }
}

/// Two-process consensus from a FIFO queue pre-filled with a single
/// "winner" token, plus announce registers (Herlihy \[7\]).
///
/// Both processes dequeue once; exactly one gets the token.
pub fn queue_consensus_2() -> [QueueProposer; 2] {
    let queue = Arc::new(ArrayQueue::new(1));
    queue.push(()).expect("fresh queue has capacity");
    let (w0, r0) = atomic_reg(0u64);
    let (w1, r1) = atomic_reg(0u64);
    [
        QueueProposer {
            queue: Arc::clone(&queue),
            announce: w0,
            peer: r1,
        },
        QueueProposer {
            queue,
            announce: w1,
            peer: r0,
        },
    ]
}

/// Handle of [`queue_consensus_2`].
#[derive(Debug)]
pub struct QueueProposer {
    queue: Arc<ArrayQueue<()>>,
    announce: AtomicRegWriter<u64>,
    peer: AtomicRegReader<u64>,
}

impl Proposer for QueueProposer {
    fn propose(mut self, value: u64) -> u64 {
        self.announce.write(value);
        if self.queue.pop().is_some() {
            value
        } else {
            self.peer.read()
        }
    }
}

/// Binary consensus for `n` processes from a single sticky bit
/// (Plotkin \[19\]): the first write sticks and every write reports the
/// stuck value, so a write *is* a proposal. No registers needed.
///
/// # Panics
///
/// [`Proposer::propose`] panics if `value` is not 0 or 1.
pub fn sticky_consensus(n: usize) -> Vec<StickyProposer> {
    // 0 = unwritten; v + 1 = stuck at v.
    let bit = Arc::new(AtomicU64::new(0));
    (0..n)
        .map(|_| StickyProposer {
            bit: Arc::clone(&bit),
        })
        .collect()
}

/// Handle of [`sticky_consensus`].
#[derive(Debug)]
pub struct StickyProposer {
    bit: Arc<AtomicU64>,
}

impl Proposer for StickyProposer {
    fn propose(self, value: u64) -> u64 {
        assert!(value <= 1, "sticky-bit consensus is binary");
        let _ = self
            .bit
            .compare_exchange(0, value + 1, Ordering::AcqRel, Ordering::Acquire);
        self.bit.load(Ordering::Acquire) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfc_runtime::run_threads;

    fn check_agreement_validity(decisions: &[u64], proposals: &[u64]) {
        assert!(
            decisions.windows(2).all(|w| w[0] == w[1]),
            "agreement violated: {decisions:?}"
        );
        assert!(
            proposals.contains(&decisions[0]),
            "validity violated: decided {} not in {proposals:?}",
            decisions[0]
        );
    }

    #[test]
    fn cas_consensus_agrees_under_contention() {
        for _ in 0..50 {
            let handles = cas_consensus(4);
            let proposals: Vec<u64> = (0..4).map(|k| k + 10).collect();
            let ps = proposals.clone();
            let decisions = run_threads(
                handles
                    .into_iter()
                    .zip(ps)
                    .map(|(h, v)| move || h.propose(v))
                    .collect::<Vec<_>>(),
            );
            check_agreement_validity(&decisions, &proposals);
        }
    }

    #[test]
    fn tas_consensus_2_agrees_under_contention() {
        for round in 0..100 {
            let [a, b] = tas_consensus_2();
            let proposals = [round % 2, 1 - round % 2];
            let decisions = run_threads(vec![
                Box::new(move || a.propose(proposals[0])) as Box<dyn FnOnce() -> u64 + Send>,
                Box::new(move || b.propose(proposals[1])),
            ]);
            check_agreement_validity(&decisions, &proposals);
        }
    }

    #[test]
    fn fetch_add_consensus_2_agrees_under_contention() {
        for round in 0..100u64 {
            let [a, b] = fetch_add_consensus_2();
            let proposals = [round, round + 1];
            let decisions = run_threads(vec![
                Box::new(move || a.propose(proposals[0])) as Box<dyn FnOnce() -> u64 + Send>,
                Box::new(move || b.propose(proposals[1])),
            ]);
            check_agreement_validity(&decisions, &proposals);
        }
    }

    #[test]
    fn queue_consensus_2_agrees_under_contention() {
        for round in 0..100u64 {
            let [a, b] = queue_consensus_2();
            let proposals = [2 * round, 2 * round + 1];
            let decisions = run_threads(vec![
                Box::new(move || a.propose(proposals[0])) as Box<dyn FnOnce() -> u64 + Send>,
                Box::new(move || b.propose(proposals[1])),
            ]);
            check_agreement_validity(&decisions, &proposals);
        }
    }

    #[test]
    fn sticky_consensus_agrees_for_many_processes() {
        for _ in 0..50 {
            let n = 6;
            let handles = sticky_consensus(n);
            let proposals: Vec<u64> = (0..n as u64).map(|k| k % 2).collect();
            let ps = proposals.clone();
            let decisions = run_threads(
                handles
                    .into_iter()
                    .zip(ps)
                    .map(|(h, v)| move || h.propose(v))
                    .collect::<Vec<_>>(),
            );
            check_agreement_validity(&decisions, &proposals);
        }
    }

    #[test]
    fn solo_proposals_decide_own_value() {
        let handles = cas_consensus(1);
        assert_eq!(handles.into_iter().next().unwrap().propose(9), 9);
        let [a, _b] = tas_consensus_2();
        assert_eq!(a.propose(3), 3);
        let [a, _b] = queue_consensus_2();
        assert_eq!(a.propose(5), 5);
        let [a, _b] = fetch_add_consensus_2();
        assert_eq!(a.propose(7), 7);
        let handles = sticky_consensus(3);
        assert_eq!(handles.into_iter().next().unwrap().propose(1), 1);
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn sticky_rejects_non_binary() {
        let handles = sticky_consensus(1);
        let _ = handles.into_iter().next().unwrap().propose(2);
    }
}
