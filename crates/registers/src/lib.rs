//! # `wfc-registers` — the register-construction chain of Section 4.1
//!
//! The paper's argument needs one classical fact (Section 4.1): general
//! multi-reader, multi-writer, atomic, multi-value registers are wait-free
//! implementable from single-reader single-writer bits. This crate builds
//! that chain as real, lock-free Rust:
//!
//! | layer | construction | lineage |
//! |---|---|---|
//! | [`atomic_bit`], [`atomic_reg`] | base SRSW atomic cells (`AtomicBool`, [`SeqLockCell`]) | hardware substitution, see DESIGN.md |
//! | [`mrsw_regular_bit`] | one SRSW bit per reader | Lamport \[13\] |
//! | [`unary_regular_register`] | multi-valued regular register, unary encoding | Peterson \[16\] lineage |
//! | [`mrsw_atomic_register`] | timestamps + n×n helping matrix | Burns–Peterson \[3\] step |
//! | [`mrmw_atomic_register`] | Vitányi–Awerbuch writer labels | Peterson–Burns \[18\] step |
//! | [`Register`] | the assembled public façade | — |
//!
//! Access restrictions (single reader, single writer) are enforced by
//! *handle ownership*: constructions hand out one handle per role and all
//! operations take `&mut self`, so violating the access pattern is a
//! compile error (the handle traits [`BitReader`], [`BitWriter`],
//! [`RegReader`], [`RegWriter`]).
//!
//! Every layer carries unit tests, concurrent stress tests, and — via
//! `wfc-runtime` history recording and the `wfc-explorer` checker —
//! linearizability/regularity verification of recorded executions.
//!
//! The base cells are generic over a [`CellProvider`]: [`RealProvider`]
//! (the default everywhere) is real hardware atomics, and the
//! `wfc-sched` model checker substitutes scheduler-instrumented shims to
//! check the same construction code under exhaustively enumerated
//! interleavings (DESIGN.md §2.10).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cell;
mod mrmw;
mod mrsw_atomic;
mod mrsw_regular;
mod provider;
mod queue;
mod register;
mod srsw;
mod traits;
mod unary;

pub use cell::SeqLockCell;
pub use mrmw::{mrmw_atomic_register, Labelled, MrmwReader, MrmwWriter};
pub use mrsw_atomic::{mrsw_atomic_register, MrswAtomicReader, MrswAtomicWriter};
pub use mrsw_regular::{mrsw_regular_bit, MrswRegularReader, MrswRegularWriter};
pub use provider::{CellProvider, RawAtomicBool, RawAtomicUsize, RawData, RealData, RealProvider};
pub use queue::ArrayQueue;
pub use register::{Register, RegisterReader, RegisterWriter};
pub use srsw::{
    atomic_bit, atomic_bit_in, atomic_reg, atomic_reg_in, AtomicBitReader, AtomicBitWriter,
    AtomicRegReader, AtomicRegWriter,
};
pub use traits::{BitReader, BitWriter, RegReader, RegWriter, Stamped};
pub use unary::{unary_regular_register, UnaryReader, UnaryWriter};

#[cfg(test)]
mod tests {
    #[test]
    fn handles_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<crate::AtomicBitWriter>();
        assert_send::<crate::RegisterWriter<u64>>();
        assert_send::<crate::RegisterReader<u64>>();
    }
}
