//! A bounded lock-free multi-producer multi-consumer queue: the in-repo
//! replacement for `crossbeam::queue::ArrayQueue`.
//!
//! The algorithm is Vyukov's bounded MPMC queue: each slot carries a
//! sequence number; producers and consumers claim positions with a CAS
//! on a global head/tail counter and use the slot sequence to detect
//! full/empty without locking. Used by the native consensus protocols
//! (`wfc-consensus`) for Herlihy's one-token-queue construction.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free MPMC queue with a fixed capacity.
pub struct ArrayQueue<T> {
    head: AtomicUsize,
    tail: AtomicUsize,
    slots: Box<[Slot<T>]>,
}

// Safety: slots are handed between threads through the seq/CAS protocol;
// a slot's payload is only touched by the thread that claimed its
// position.
unsafe impl<T: Send> Send for ArrayQueue<T> {}
unsafe impl<T: Send> Sync for ArrayQueue<T> {}

impl<T> ArrayQueue<T> {
    /// Creates an empty queue with room for `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let slots = (0..capacity)
            .map(|k| Slot {
                seq: AtomicUsize::new(k),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        ArrayQueue {
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            slots,
        }
    }

    /// The queue's capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Enqueues `value`, or returns it if the queue is full.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when the queue is at capacity.
    pub fn push(&self, value: T) -> Result<(), T> {
        let cap = self.slots.len();
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[tail % cap];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == tail {
                match self.tail.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // Safety: the CAS claimed position `tail`
                        // exclusively; the slot is empty (seq == tail).
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(tail.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => tail = actual,
                }
            } else if seq < tail {
                // The slot still holds an element from `cap` positions
                // ago: the queue is full.
                return Err(value);
            } else {
                tail = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest element, or `None` if the queue is empty.
    pub fn pop(&self) -> Option<T> {
        let cap = self.slots.len();
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[head % cap];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == head.wrapping_add(1) {
                match self.head.compare_exchange_weak(
                    head,
                    head.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // Safety: the CAS claimed position `head`
                        // exclusively; the slot holds an initialised
                        // element (seq == head + 1).
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq.store(head.wrapping_add(cap), Ordering::Release);
                        return Some(value);
                    }
                    Err(actual) => head = actual,
                }
            } else if seq <= head {
                return None;
            } else {
                head = self.head.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T> Drop for ArrayQueue<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for ArrayQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrayQueue")
            .field("capacity", &self.capacity())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn fifo_order_and_capacity() {
        let q = ArrayQueue::new(2);
        assert_eq!(q.capacity(), 2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(3), "full queue rejects");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        // Wraps around.
        q.push(4).unwrap();
        assert_eq!(q.pop(), Some(4));
    }

    #[test]
    fn single_token_is_won_exactly_once() {
        // The consensus use case: one token, many racing consumers.
        for _ in 0..200 {
            let q = ArrayQueue::new(1);
            q.push(()).unwrap();
            let wins = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        if q.pop().is_some() {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            assert_eq!(wins.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_elements() {
        let q = ArrayQueue::new(8);
        let total = AtomicUsize::new(0);
        let popped = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..2usize {
                let q = &q;
                let total = &total;
                s.spawn(move || {
                    for k in 0..1000 {
                        let v = t * 10_000 + k;
                        loop {
                            if q.push(v).is_ok() {
                                total.fetch_add(v, Ordering::Relaxed);
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            for _ in 0..2 {
                let q = &q;
                let popped = &popped;
                s.spawn(move || {
                    let mut got = 0usize;
                    let mut sum = 0usize;
                    while got < 1000 {
                        if let Some(v) = q.pop() {
                            got += 1;
                            sum += v;
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                    popped.fetch_add(sum, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(
            total.load(Ordering::Relaxed),
            popped.load(Ordering::Relaxed)
        );
    }
}
