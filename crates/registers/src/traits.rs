//! Handle traits for registers with restricted access patterns.
//!
//! The register-construction literature (paper, Section 4.1) distinguishes
//! registers by how many processes may read or write them. We turn those
//! side conditions into ownership: a construction hands out one *handle*
//! per permitted role, and holding `&mut self` methods on an owned handle
//! is exactly the "single reader" / "single writer" discipline — misuse
//! becomes a compile error rather than a data race.

/// The reading end of a bit readable by the owner of this handle only.
pub trait BitReader: Send {
    /// Reads the bit.
    fn read(&mut self) -> bool;
}

/// The writing end of a bit writable by the owner of this handle only.
pub trait BitWriter: Send {
    /// Writes the bit.
    fn write(&mut self, v: bool);
}

/// The reading end of a single-reader register of `T`.
pub trait RegReader<T>: Send {
    /// Reads the register.
    fn read(&mut self) -> T;
}

/// The writing end of a single-writer register of `T`.
pub trait RegWriter<T>: Send {
    /// Writes the register.
    fn write(&mut self, v: T);
}

impl<R: BitReader + ?Sized> BitReader for Box<R> {
    fn read(&mut self) -> bool {
        (**self).read()
    }
}

impl<W: BitWriter + ?Sized> BitWriter for Box<W> {
    fn write(&mut self, v: bool) {
        (**self).write(v)
    }
}

impl<T, R: RegReader<T> + ?Sized> RegReader<T> for Box<R> {
    fn read(&mut self) -> T {
        (**self).read()
    }
}

impl<T, W: RegWriter<T> + ?Sized> RegWriter<T> for Box<W> {
    fn write(&mut self, v: T) {
        (**self).write(v)
    }
}

/// A value paired with the writer-local sequence number that stamped it.
///
/// The unbounded-timestamp constructions (MRSW helping matrix, MRMW
/// Vitányi–Awerbuch) order concurrent writes by stamp. A `u64` stamp is
/// "unbounded" for any physically realisable execution; the bounded
/// alternatives from the paper's bibliography trade this for considerable
/// algorithmic complexity (see DESIGN.md, substitutions).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Stamped<T> {
    /// The writer's sequence number.
    pub stamp: u64,
    /// The carried value.
    pub value: T,
}

impl<T> Stamped<T> {
    /// Stamps `value` with `stamp`.
    pub fn new(stamp: u64, value: T) -> Self {
        Stamped { stamp, value }
    }

    /// Returns whichever of `self`/`other` carries the larger stamp
    /// (ties favour `self`: stamps from a single writer never tie on
    /// distinct writes).
    pub fn max(self, other: Self) -> Self {
        if other.stamp > self.stamp {
            other
        } else {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe(bool);
    impl BitReader for Probe {
        fn read(&mut self) -> bool {
            self.0
        }
    }
    impl BitWriter for Probe {
        fn write(&mut self, v: bool) {
            self.0 = v;
        }
    }

    #[test]
    fn boxed_handles_delegate() {
        let mut r: Box<dyn BitReader> = Box::new(Probe(true));
        assert!(r.read());
        let mut w: Box<dyn BitWriter> = Box::new(Probe(false));
        w.write(true);
    }

    #[test]
    fn stamped_max_prefers_larger_stamp() {
        let a = Stamped::new(1, 'a');
        let b = Stamped::new(2, 'b');
        assert_eq!(a.max(b).value, 'b');
        assert_eq!(b.max(a).value, 'b');
        // Ties keep self.
        let c = Stamped::new(2, 'c');
        assert_eq!(b.max(c).value, 'b');
    }
}
