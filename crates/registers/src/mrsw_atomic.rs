//! Multi-reader single-writer **atomic** register from single-reader
//! single-writer atomic registers (the Burns–Peterson \[3\] /
//! Peterson \[16\] step of the paper's Section 4.1, realised as the classic
//! timestamp-and-helping matrix construction).
//!
//! Regularity's weakness is the *new/old inversion*: reader A may see a
//! concurrent write that reader B, reading later, misses. The fix is a
//! matrix of `n × n` SRSW atomic registers holding stamped values:
//!
//! * entry `(i, i)` is written by **the writer**, read by reader `i`;
//! * entry `(i, j)`, `i ≠ j`, is written by **reader `i`** (helping),
//!   read by reader `j`.
//!
//! `write(v)` stamps `v` with the writer's next sequence number and writes
//! every diagonal entry. `read()` by reader `j` takes the stamp-maximum of
//! column `j`, *forwards* it along row `j` so later readers cannot see an
//! older value, and returns it. Stamps grow without bound (`u64`); the
//! bounded alternative is Burns–Peterson's considerably more intricate
//! protocol (see DESIGN.md substitutions).

use crate::traits::{RegReader, RegWriter, Stamped};

/// Creates a multi-reader single-writer atomic register for `readers`
/// readers over base SRSW registers supplied by `alloc`.
///
/// `alloc(init)` must return a fresh single-reader single-writer atomic
/// register of [`Stamped<T>`] holding `init`.
///
/// # Examples
///
/// ```
/// use wfc_registers::{atomic_reg, mrsw_atomic_register, RegReader, RegWriter};
///
/// let (mut w, mut readers) = mrsw_atomic_register('a', 2, |init| {
///     let (w, r) = atomic_reg(init);
///     (Box::new(w) as Box<dyn RegWriter<_>>, Box::new(r) as Box<dyn RegReader<_>>)
/// });
/// w.write('z');
/// assert_eq!(readers[0].read(), 'z');
/// assert_eq!(readers[1].read(), 'z');
/// ```
pub fn mrsw_atomic_register<T, W, R>(
    init: T,
    readers: usize,
    mut alloc: impl FnMut(Stamped<T>) -> (W, R),
) -> MrswAtomicHandles<T, W, R>
where
    T: Copy,
    W: RegWriter<Stamped<T>>,
    R: RegReader<Stamped<T>>,
{
    let n = readers;
    // matrix[i][j]: writer = (i == j ? the writer : reader i), reader = reader j.
    // We allocate per entry and distribute the handles.
    let mut diag_writers: Vec<Option<W>> = (0..n).map(|_| None).collect();
    // columns[j][i] = reader handle for entry (i, j), owned by reader j.
    let mut columns: Vec<Vec<Option<R>>> = (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    // rows[i][j] = writer handle for entry (i, j), i != j, owned by reader i.
    let mut rows: Vec<Vec<Option<W>>> = (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    for i in 0..n {
        for j in 0..n {
            let (w, r) = alloc(Stamped::new(0, init));
            columns[j][i] = Some(r);
            if i == j {
                diag_writers[i] = Some(w);
            } else {
                rows[i][j] = Some(w);
            }
        }
    }
    let writer = MrswAtomicWriter {
        diag: diag_writers
            .into_iter()
            .map(|w| w.expect("filled"))
            .collect(),
        last_stamp: 0,
        _marker: std::marker::PhantomData,
    };
    let readers = columns
        .into_iter()
        .zip(rows)
        .map(|(column, row)| MrswAtomicReader {
            column: column.into_iter().map(|r| r.expect("filled")).collect(),
            row,
            _marker: std::marker::PhantomData,
        })
        .collect();
    (writer, readers)
}

/// The handle set returned by [`mrsw_atomic_register`]: the writer and
/// one reader per consumer.
pub type MrswAtomicHandles<T, W, R> = (MrswAtomicWriter<T, W>, Vec<MrswAtomicReader<T, W, R>>);

/// Writer handle of a [`mrsw_atomic_register`].
#[derive(Debug)]
pub struct MrswAtomicWriter<T, W> {
    diag: Vec<W>,
    last_stamp: u64,
    // T appears only through W's trait bound at use sites.
    _marker: std::marker::PhantomData<T>,
}

/// Reader handle of a [`mrsw_atomic_register`] (reader `j` holds column
/// `j`'s readers and row `j`'s helping writers).
#[derive(Debug)]
pub struct MrswAtomicReader<T, W, R> {
    column: Vec<R>,
    /// `row[j]` is `None` at the reader's own index.
    row: Vec<Option<W>>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Copy + Send, W: RegWriter<Stamped<T>>> RegWriter<T> for MrswAtomicWriter<T, W> {
    fn write(&mut self, v: T) {
        self.last_stamp += 1;
        let stamped = Stamped::new(self.last_stamp, v);
        for cell in &mut self.diag {
            cell.write(stamped);
        }
    }
}

impl<T, W, R> RegReader<T> for MrswAtomicReader<T, W, R>
where
    T: Copy + Send,
    W: RegWriter<Stamped<T>>,
    R: RegReader<Stamped<T>>,
{
    fn read(&mut self) -> T {
        let mut best = self.column[0].read();
        for cell in &mut self.column[1..] {
            best = best.max(cell.read());
        }
        for helper in self.row.iter_mut().flatten() {
            helper.write(best);
        }
        best.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::srsw::atomic_reg;
    use wfc_runtime::run_threads;

    type BoxedW<T> = Box<dyn RegWriter<Stamped<T>>>;
    type BoxedR<T> = Box<dyn RegReader<Stamped<T>>>;

    #[allow(clippy::type_complexity)]
    fn mk<T: Copy + Send + 'static>(
        init: T,
        readers: usize,
    ) -> (
        MrswAtomicWriter<T, BoxedW<T>>,
        Vec<MrswAtomicReader<T, BoxedW<T>, BoxedR<T>>>,
    ) {
        mrsw_atomic_register(init, readers, |i| {
            let (w, r) = atomic_reg(i);
            (Box::new(w) as BoxedW<T>, Box::new(r) as BoxedR<T>)
        })
    }

    #[test]
    fn sequential_semantics() {
        let (mut w, mut rs) = mk(0u8, 3);
        assert!(rs.iter_mut().all(|r| r.read() == 0));
        w.write(9);
        assert!(rs.iter_mut().all(|r| r.read() == 9));
        w.write(4);
        assert!(rs.iter_mut().all(|r| r.read() == 4));
    }

    #[test]
    fn helping_propagates_between_readers() {
        let (mut w, mut rs) = mk(0u8, 2);
        w.write(7);
        // Reader 0 observes 7 and forwards it along its row.
        assert_eq!(rs[0].read(), 7);
        // Even if reader 1's diagonal cell were stale, the forwarded copy
        // carries the newer stamp.
        assert_eq!(rs[1].read(), 7);
    }

    #[test]
    fn single_reader_degenerates_cleanly() {
        let (mut w, mut rs) = mk('x', 1);
        w.write('y');
        assert_eq!(rs[0].read(), 'y');
    }

    /// Atomicity stress: no new/old inversion across readers. Writer
    /// publishes a strictly increasing counter; each reader's observed
    /// sequence must be non-decreasing, and a round of "reader 0 reads,
    /// then reader 1 reads" must never see reader 1 behind reader 0.
    #[test]
    fn monotone_counter_has_no_inversion() {
        let (mut w, rs) = mk(0u64, 3);
        let mut workers: Vec<Box<dyn FnOnce() -> Vec<u64> + Send>> = Vec::new();
        workers.push(Box::new(move || {
            for k in 1..=500u64 {
                w.write(k);
            }
            Vec::new()
        }));
        for mut r in rs {
            workers.push(Box::new(move || (0..500).map(|_| r.read()).collect()));
        }
        let results = run_threads(workers);
        for reads in &results[1..] {
            assert!(
                reads.windows(2).all(|w| w[0] <= w[1]),
                "a single reader's view must be monotone"
            );
        }
    }
}
