//! A lock-free-for-readers atomic cell for `Copy` values: the in-repo
//! replacement for `crossbeam::atomic::AtomicCell`.
//!
//! The implementation is a classic *seqlock*: a version counter that is
//! odd while a write is in progress. Writers serialise on the counter
//! (CAS even → odd, write the payload, bump back to even); readers
//! snapshot the counter, copy the payload, and retry if the counter
//! moved or was odd. Readers never block writers and never spin on a
//! lock — they only retry when a write actually overlapped, so for the
//! single-writer registers of Section 4.1 a read is two atomic loads and
//! a `memcpy`.
//!
//! Linearizability: a successful read's payload copy is bracketed by two
//! equal even counter loads, so it observed the state of exactly one
//! completed write; that write is the linearisation point.
//!
//! The cell is generic over a [`CellProvider`]: with the default
//! [`RealProvider`] it compiles to exactly the hardware atomics above;
//! under the `wfc-sched` model checker's provider every counter access
//! and payload copy becomes a scheduler yield point, so the protocol is
//! checked under all bounded interleavings.

use crate::provider::{CellProvider, RawAtomicUsize, RawData, RealProvider};

/// An atomic cell holding a `Copy` value of any size, readable and
/// writable from any thread.
pub struct SeqLockCell<T: Copy + Send + 'static, P: CellProvider = RealProvider> {
    seq: P::AtomicUsize,
    value: P::Data<T>,
}

impl<T: Copy + Send + 'static, P: CellProvider> SeqLockCell<T, P> {
    /// Creates a cell initialised to `value`.
    pub fn new(value: T) -> Self {
        SeqLockCell {
            seq: P::AtomicUsize::new(0),
            value: P::Data::new(value),
        }
    }

    /// Atomically replaces the value.
    pub fn store(&self, value: T) {
        // Acquire the write side: CAS the counter from even to odd.
        let mut seq = self.seq.load_relaxed();
        loop {
            if seq.is_multiple_of(2) {
                match self.seq.cas_weak_acquire(seq, seq.wrapping_add(1)) {
                    Ok(_) => break,
                    Err(actual) => seq = actual,
                }
            } else {
                P::spin_hint();
                seq = self.seq.load_relaxed();
            }
        }
        // The odd counter excludes other writers; readers that overlap
        // this plain write will observe an odd or changed counter and
        // retry rather than use the torn snapshot.
        self.value.write(value);
        self.seq.store_release(seq.wrapping_add(2));
    }

    /// Atomically loads the value.
    pub fn load(&self) -> T {
        loop {
            let before = self.seq.load_acquire();
            if !before.is_multiple_of(2) {
                P::spin_hint();
                continue;
            }
            let snapshot = self.value.read_maybe_torn();
            P::fence_acquire();
            if self.seq.load_relaxed() == before {
                // Safety: the counter did not move across the copy, so no
                // write overlapped and the snapshot is a copy of a fully
                // initialised value (the `RawData` contract).
                return unsafe { snapshot.assume_init() };
            }
            P::spin_hint();
        }
    }
}

impl<T: Copy + Send + std::fmt::Debug, P: CellProvider> std::fmt::Debug for SeqLockCell<T, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeqLockCell")
            .field("value", &self.load())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_large_values() {
        let cell = SeqLockCell::<_>::new([1u64, 2, 3, 4]);
        assert_eq!(cell.load(), [1, 2, 3, 4]);
        cell.store([5, 6, 7, 8]);
        assert_eq!(cell.load(), [5, 6, 7, 8]);
    }

    #[test]
    fn concurrent_reads_never_tear() {
        // Writer alternates between two self-consistent pairs; readers
        // must never observe a mixed pair.
        let cell = SeqLockCell::<_>::new((0u64, 0u64));
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..20_000 {
                        let (a, b) = cell.load();
                        assert_eq!(a, b, "torn read");
                    }
                });
            }
            s.spawn(|| {
                for k in 0..20_000u64 {
                    cell.store((k, k));
                }
            });
        });
    }

    #[test]
    fn concurrent_writers_serialize() {
        let cell = SeqLockCell::<_>::new((0u64, 0u64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cell = &cell;
                s.spawn(move || {
                    for k in 0..10_000u64 {
                        cell.store((t * 1_000_000 + k, t * 1_000_000 + k));
                    }
                });
            }
        });
        let (a, b) = cell.load();
        assert_eq!(a, b);
    }
}
