//! A lock-free-for-readers atomic cell for `Copy` values: the in-repo
//! replacement for `crossbeam::atomic::AtomicCell`.
//!
//! The implementation is a classic *seqlock*: a version counter that is
//! odd while a write is in progress. Writers serialise on the counter
//! (CAS even → odd, write the payload, bump back to even); readers
//! snapshot the counter, copy the payload, and retry if the counter
//! moved or was odd. Readers never block writers and never spin on a
//! lock — they only retry when a write actually overlapped, so for the
//! single-writer registers of Section 4.1 a read is two atomic loads and
//! a `memcpy`.
//!
//! Linearizability: a successful read's payload copy is bracketed by two
//! equal even counter loads, so it observed the state of exactly one
//! completed write; that write is the linearisation point.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicUsize, Ordering};

/// An atomic cell holding a `Copy` value of any size, readable and
/// writable from any thread.
pub struct SeqLockCell<T> {
    seq: AtomicUsize,
    value: UnsafeCell<T>,
}

// Safety: all access to `value` is mediated by the seqlock protocol —
// writers are mutually excluded by the odd-counter CAS, and readers
// validate their snapshot against the counter before using it.
unsafe impl<T: Copy + Send> Send for SeqLockCell<T> {}
unsafe impl<T: Copy + Send> Sync for SeqLockCell<T> {}

impl<T: Copy> SeqLockCell<T> {
    /// Creates a cell initialised to `value`.
    pub fn new(value: T) -> Self {
        SeqLockCell {
            seq: AtomicUsize::new(0),
            value: UnsafeCell::new(value),
        }
    }

    /// Atomically replaces the value.
    pub fn store(&self, value: T) {
        wfc_obs::counter!("registers.cell.stores");
        // Acquire the write side: CAS the counter from even to odd.
        let mut seq = self.seq.load(Ordering::Relaxed);
        loop {
            if seq.is_multiple_of(2) {
                match self.seq.compare_exchange_weak(
                    seq,
                    seq.wrapping_add(1),
                    Ordering::Acquire,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => seq = actual,
                }
            } else {
                std::hint::spin_loop();
                seq = self.seq.load(Ordering::Relaxed);
            }
        }
        // Safety: the odd counter excludes other writers; readers that
        // overlap this plain write will observe an odd or changed counter
        // and retry rather than use the torn snapshot.
        unsafe { std::ptr::write_volatile(self.value.get(), value) };
        self.seq.store(seq.wrapping_add(2), Ordering::Release);
    }

    /// Atomically loads the value.
    pub fn load(&self) -> T {
        wfc_obs::counter!("registers.cell.loads");
        loop {
            let before = self.seq.load(Ordering::Acquire);
            if !before.is_multiple_of(2) {
                std::hint::spin_loop();
                continue;
            }
            // Safety: the snapshot may be torn if a write overlaps, but a
            // torn snapshot is never *used*: the re-check below rejects
            // it, and `MaybeUninit` keeps the copy itself free of
            // validity requirements.
            let snapshot =
                unsafe { std::ptr::read_volatile(self.value.get().cast::<MaybeUninit<T>>()) };
            fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == before {
                // Safety: no write overlapped, so the snapshot is a copy
                // of a fully initialised value.
                return unsafe { snapshot.assume_init() };
            }
            std::hint::spin_loop();
        }
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for SeqLockCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeqLockCell")
            .field("value", &self.load())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_large_values() {
        let cell = SeqLockCell::new([1u64, 2, 3, 4]);
        assert_eq!(cell.load(), [1, 2, 3, 4]);
        cell.store([5, 6, 7, 8]);
        assert_eq!(cell.load(), [5, 6, 7, 8]);
    }

    #[test]
    fn concurrent_reads_never_tear() {
        // Writer alternates between two self-consistent pairs; readers
        // must never observe a mixed pair.
        let cell = SeqLockCell::new((0u64, 0u64));
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..20_000 {
                        let (a, b) = cell.load();
                        assert_eq!(a, b, "torn read");
                    }
                });
            }
            s.spawn(|| {
                for k in 0..20_000u64 {
                    cell.store((k, k));
                }
            });
        });
    }

    #[test]
    fn concurrent_writers_serialize() {
        let cell = SeqLockCell::new((0u64, 0u64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cell = &cell;
                s.spawn(move || {
                    for k in 0..10_000u64 {
                        cell.store((t * 1_000_000 + k, t * 1_000_000 + k));
                    }
                });
            }
        });
        let (a, b) = cell.load();
        assert_eq!(a, b);
    }
}
