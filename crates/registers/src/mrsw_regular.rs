//! Lamport's multi-reader regular bit from single-reader bits
//! (Lamport \[13\]; paper Section 4.1, first link of the chain).
//!
//! The writer keeps one single-reader bit per reader and writes them all;
//! reader `i` reads only its own copy. Because the copies are updated one
//! at a time, two *different* readers can observe a write in opposite
//! orders, so the construction is **regular**, not atomic: a read
//! overlapping a write may return either the old or the new value, and no
//! cross-reader consistency is promised. This is exactly the guarantee
//! Lamport's construction provides and what the next links of the chain
//! strengthen.

use crate::traits::{BitReader, BitWriter};

/// Creates a multi-reader regular bit served to `readers` readers, built
/// from one single-reader bit per reader.
///
/// `alloc` supplies the underlying single-reader single-writer bits
/// (e.g. [`crate::atomic_bit`] wrapped in boxes).
///
/// # Examples
///
/// ```
/// use wfc_registers::{atomic_bit, mrsw_regular_bit, BitReader, BitWriter};
///
/// let (mut w, mut readers) = mrsw_regular_bit(false, 3, |init| {
///     let (w, r) = atomic_bit(init);
///     (
///         Box::new(w) as Box<dyn BitWriter>,
///         Box::new(r) as Box<dyn BitReader>,
///     )
/// });
/// w.write(true);
/// assert!(readers.iter_mut().all(|r| r.read()));
/// ```
pub fn mrsw_regular_bit<W, R>(
    init: bool,
    readers: usize,
    mut alloc: impl FnMut(bool) -> (W, R),
) -> (MrswRegularWriter<W>, Vec<MrswRegularReader<R>>)
where
    W: BitWriter,
    R: BitReader,
{
    let (writers, reader_handles): (Vec<W>, Vec<R>) = (0..readers).map(|_| alloc(init)).unzip();
    (
        MrswRegularWriter { copies: writers },
        reader_handles
            .into_iter()
            .map(|own| MrswRegularReader { own })
            .collect(),
    )
}

/// Writer handle of a [`mrsw_regular_bit`].
#[derive(Debug)]
pub struct MrswRegularWriter<W> {
    copies: Vec<W>,
}

impl<W: BitWriter> BitWriter for MrswRegularWriter<W> {
    fn write(&mut self, v: bool) {
        for copy in &mut self.copies {
            copy.write(v);
        }
    }
}

/// Reader handle of a [`mrsw_regular_bit`].
#[derive(Debug)]
pub struct MrswRegularReader<R> {
    own: R,
}

impl<R: BitReader> BitReader for MrswRegularReader<R> {
    fn read(&mut self) -> bool {
        self.own.read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::srsw::atomic_bit;

    fn boxed(init: bool) -> (Box<dyn BitWriter>, Box<dyn BitReader>) {
        let (w, r) = atomic_bit(init);
        (Box::new(w), Box::new(r))
    }

    #[test]
    fn all_readers_track_the_writer() {
        let (mut w, mut rs) = mrsw_regular_bit(false, 4, boxed);
        assert!(rs.iter_mut().all(|r| !r.read()));
        w.write(true);
        assert!(rs.iter_mut().all(|r| r.read()));
        w.write(false);
        assert!(rs.iter_mut().all(|r| !r.read()));
    }

    #[test]
    fn zero_readers_is_degenerate_but_legal() {
        let (mut w, rs) = mrsw_regular_bit(true, 0, boxed);
        assert!(rs.is_empty());
        w.write(false); // no copies to update; must not panic
    }

    #[test]
    fn concurrent_readers_see_old_or_new_only() {
        use wfc_runtime::run_threads;
        // Writer toggles; readers may see any prefix-consistent value, but
        // never anything other than `true`/`false` transitions in order:
        // once a reader sees the k-th write's value and the writer is
        // quiescent, it keeps seeing it.
        let (mut w, rs) = mrsw_regular_bit(false, 3, boxed);
        let mut workers: Vec<Box<dyn FnOnce() -> bool + Send>> = Vec::new();
        workers.push(Box::new(move || {
            for k in 0..100 {
                w.write(k % 2 == 0);
            }
            true
        }));
        for mut r in rs {
            workers.push(Box::new(move || {
                let mut last = false;
                for _ in 0..100 {
                    last = r.read();
                }
                last
            }));
        }
        let _ = run_threads(workers);
    }
}
