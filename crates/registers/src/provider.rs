//! The cell-provider abstraction: one trait family describing the raw
//! shared-memory cells the register constructions are built from.
//!
//! Every concrete implementation in this crate bottoms out in three kinds
//! of shared cell: an atomic `usize` (the seqlock counter), an atomic
//! `bool` (the base SRSW bit), and an unsynchronised data slot whose reads
//! may be torn when a write overlaps (the seqlock payload). A
//! [`CellProvider`] supplies all three. In production the provider is
//! [`RealProvider`] — `std::sync::atomic` plus a volatile `UnsafeCell` —
//! and the abstraction compiles away entirely: every trait method is a
//! `#[inline]` wrapper around the exact instruction the pre-refactor code
//! issued (the *zero-cost-when-real* contract, see DESIGN.md §2.10).
//! Under the `wfc-sched` model checker the provider is a set of shims
//! that yield to a deterministic scheduler at every shared access, so the
//! same unmodified construction code runs under exhaustively enumerated
//! interleavings.
//!
//! Memory orderings are baked into the method names (`load_acquire`,
//! `store_release`, …) rather than passed as parameters: the
//! constructions use a fixed, audited set of orderings, and shim
//! providers — which simulate sequential consistency — can ignore them
//! without carrying unused parameters.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};

/// A shared atomic `usize` cell.
pub trait RawAtomicUsize: Send + Sync {
    /// Creates a cell holding `value`.
    fn new(value: usize) -> Self;
    /// Loads with acquire ordering.
    fn load_acquire(&self) -> usize;
    /// Loads with relaxed ordering.
    fn load_relaxed(&self) -> usize;
    /// Stores with release ordering.
    fn store_release(&self, value: usize);
    /// Weak compare-exchange, acquire on success, relaxed on failure.
    /// Returns the previous value as `Ok` on success, `Err` on failure
    /// (spurious failure allowed).
    fn cas_weak_acquire(&self, current: usize, new: usize) -> Result<usize, usize>;
    /// Unconditional atomic exchange with acquire-release ordering;
    /// returns the previous value. Unlike a CAS loop this cannot fail or
    /// retry, which is what makes the triple buffer's index handoff
    /// wait-free (`wfc-waitfree`, DESIGN §2.15).
    fn swap_acq_rel(&self, value: usize) -> usize;
}

/// A shared atomic `bool` cell.
pub trait RawAtomicBool: Send + Sync {
    /// Creates a cell holding `value`.
    fn new(value: bool) -> Self;
    /// Loads with acquire ordering.
    fn load_acquire(&self) -> bool;
    /// Stores with release ordering.
    fn store_release(&self, value: bool);
}

/// A shared, unsynchronised data slot for a `Copy` payload.
///
/// # Contract
///
/// `write` must never race another `write` (callers provide mutual
/// exclusion — the seqlock's odd counter). `read_maybe_torn` may overlap
/// a `write`; the returned bytes are then unspecified, and the caller
/// must discard them without calling `assume_init` unless it can prove
/// (e.g. by seqlock validation) that no write overlapped.
pub trait RawData<T: Copy>: Send + Sync {
    /// Creates a slot holding `value`.
    fn new(value: T) -> Self;
    /// Copies the slot's bytes; torn if a `write` overlapped.
    fn read_maybe_torn(&self) -> MaybeUninit<T>;
    /// Overwrites the slot. Must not race another `write`.
    fn write(&self, value: T);
}

/// A family of raw shared cells for the register constructions.
///
/// The default provider everywhere is [`RealProvider`]; the `wfc-sched`
/// crate supplies a scheduler-instrumented provider for model checking.
pub trait CellProvider: 'static {
    /// The atomic `usize` cell (seqlock counters).
    type AtomicUsize: RawAtomicUsize;
    /// The atomic `bool` cell (base SRSW bits).
    type AtomicBool: RawAtomicBool;
    /// The unsynchronised payload slot (seqlock payloads).
    type Data<T: Copy + Send + 'static>: RawData<T>;

    /// An acquire fence, ordering a preceding data read before a
    /// subsequent validation load.
    fn fence_acquire();
    /// A spin-wait hint for retry loops.
    fn spin_hint();
}

/// The production provider: real hardware atomics and volatile payload
/// access. Every method inlines to exactly the code the constructions
/// used before they were made generic.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealProvider;

impl RawAtomicUsize for AtomicUsize {
    #[inline]
    fn new(value: usize) -> Self {
        AtomicUsize::new(value)
    }
    #[inline]
    fn load_acquire(&self) -> usize {
        self.load(Ordering::Acquire)
    }
    #[inline]
    fn load_relaxed(&self) -> usize {
        self.load(Ordering::Relaxed)
    }
    #[inline]
    fn store_release(&self, value: usize) {
        self.store(value, Ordering::Release)
    }
    #[inline]
    fn cas_weak_acquire(&self, current: usize, new: usize) -> Result<usize, usize> {
        self.compare_exchange_weak(current, new, Ordering::Acquire, Ordering::Relaxed)
    }
    #[inline]
    fn swap_acq_rel(&self, value: usize) -> usize {
        self.swap(value, Ordering::AcqRel)
    }
}

impl RawAtomicBool for AtomicBool {
    #[inline]
    fn new(value: bool) -> Self {
        AtomicBool::new(value)
    }
    #[inline]
    fn load_acquire(&self) -> bool {
        self.load(Ordering::Acquire)
    }
    #[inline]
    fn store_release(&self, value: bool) {
        self.store(value, Ordering::Release)
    }
}

/// The production payload slot: an `UnsafeCell` accessed with volatile
/// copies, exactly as the pre-refactor `SeqLockCell` did.
pub struct RealData<T>(UnsafeCell<T>);

// Safety: the `RawData` contract makes callers responsible for the
// synchronisation — writes are mutually excluded by the seqlock counter,
// and torn reads are discarded after validation, never inspected.
unsafe impl<T: Copy + Send> Send for RealData<T> {}
unsafe impl<T: Copy + Send> Sync for RealData<T> {}

impl<T: Copy + Send> RawData<T> for RealData<T> {
    #[inline]
    fn new(value: T) -> Self {
        RealData(UnsafeCell::new(value))
    }
    #[inline]
    fn read_maybe_torn(&self) -> MaybeUninit<T> {
        // Safety: reading through `MaybeUninit` places no validity
        // requirement on the (possibly torn) bytes; volatile keeps the
        // copy from being elided or reordered by the compiler.
        unsafe { std::ptr::read_volatile(self.0.get().cast::<MaybeUninit<T>>()) }
    }
    #[inline]
    fn write(&self, value: T) {
        // Safety: the contract excludes concurrent `write`s; overlapping
        // readers discard their torn snapshot after seqlock validation.
        unsafe { std::ptr::write_volatile(self.0.get(), value) }
    }
}

impl<T> std::fmt::Debug for RealData<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RealData").finish_non_exhaustive()
    }
}

impl CellProvider for RealProvider {
    type AtomicUsize = AtomicUsize;
    type AtomicBool = AtomicBool;
    type Data<T: Copy + Send + 'static> = RealData<T>;

    #[inline]
    fn fence_acquire() {
        fence(Ordering::Acquire);
    }
    #[inline]
    fn spin_hint() {
        std::hint::spin_loop();
    }
}
