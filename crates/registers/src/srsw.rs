//! Base single-reader single-writer atomic primitives.
//!
//! The paper's Section 4.1 chain bottoms out at "single-reader,
//! single-writer bits". On real hardware we substitute `AtomicBool` (and
//! the in-repo [`SeqLockCell`] for stamped values), which are *atomic* —
//! strictly stronger than the regular bits the cited constructions assume.
//! The substitution is sound: every construction above remains correct
//! when its base registers are stronger, and the algorithms themselves
//! only ever touch the base through the single-reader/single-writer
//! handles of [`crate::traits`], so the restricted access pattern the
//! literature assumes is faithfully observed. (See DESIGN.md,
//! substitutions table.)
//!
//! Both primitives come in provider-generic form ([`atomic_bit_in`],
//! [`atomic_reg_in`]) so the `wfc-sched` model checker can build the same
//! handles over scheduler-instrumented cells; the plain constructors are
//! the [`RealProvider`] instantiation and cost exactly what they did
//! before the refactor.

use std::sync::Arc;

use crate::cell::SeqLockCell;
use crate::provider::{CellProvider, RawAtomicBool, RealProvider};
use crate::traits::{BitReader, BitWriter, RegReader, RegWriter};

/// Creates a single-reader single-writer atomic bit, returning its two
/// handles.
///
/// # Examples
///
/// ```
/// use wfc_registers::{atomic_bit, BitReader, BitWriter};
///
/// let (mut w, mut r) = atomic_bit(false);
/// assert!(!r.read());
/// w.write(true);
/// assert!(r.read());
/// ```
pub fn atomic_bit(init: bool) -> (AtomicBitWriter, AtomicBitReader) {
    atomic_bit_in::<RealProvider>(init)
}

/// [`atomic_bit`], generic over the [`CellProvider`] supplying the
/// underlying atomic cell.
pub fn atomic_bit_in<P: CellProvider>(init: bool) -> (AtomicBitWriter<P>, AtomicBitReader<P>) {
    let cell = Arc::new(P::AtomicBool::new(init));
    (
        AtomicBitWriter {
            cell: Arc::clone(&cell),
        },
        AtomicBitReader { cell },
    )
}

/// Writer handle of an [`atomic_bit`].
pub struct AtomicBitWriter<P: CellProvider = RealProvider> {
    cell: Arc<P::AtomicBool>,
}

/// Reader handle of an [`atomic_bit`].
pub struct AtomicBitReader<P: CellProvider = RealProvider> {
    cell: Arc<P::AtomicBool>,
}

impl<P: CellProvider> std::fmt::Debug for AtomicBitWriter<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicBitWriter").finish_non_exhaustive()
    }
}

impl<P: CellProvider> std::fmt::Debug for AtomicBitReader<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicBitReader").finish_non_exhaustive()
    }
}

impl<P: CellProvider> BitWriter for AtomicBitWriter<P> {
    fn write(&mut self, v: bool) {
        self.cell.store_release(v);
    }
}

impl<P: CellProvider> BitReader for AtomicBitReader<P> {
    fn read(&mut self) -> bool {
        self.cell.load_acquire()
    }
}

/// Creates a single-reader single-writer atomic register of any `Copy`
/// value, returning its two handles.
///
/// Backed by [`SeqLockCell`], a seqlock over any `Copy` payload —
/// readers retry only when a write actually overlaps, and the read of a
/// quiescent cell is wait-free.
pub fn atomic_reg<T: Copy + Send + 'static>(init: T) -> (AtomicRegWriter<T>, AtomicRegReader<T>) {
    atomic_reg_in::<T, RealProvider>(init)
}

/// [`atomic_reg`], generic over the [`CellProvider`] supplying the
/// seqlock's counter and payload cells.
pub fn atomic_reg_in<T: Copy + Send + 'static, P: CellProvider>(
    init: T,
) -> (AtomicRegWriter<T, P>, AtomicRegReader<T, P>) {
    let cell = Arc::new(SeqLockCell::<T, P>::new(init));
    (
        AtomicRegWriter {
            cell: Arc::clone(&cell),
        },
        AtomicRegReader { cell },
    )
}

/// Writer handle of an [`atomic_reg`].
pub struct AtomicRegWriter<T: Copy + Send + 'static, P: CellProvider = RealProvider> {
    cell: Arc<SeqLockCell<T, P>>,
}

impl<T: Copy + Send + 'static, P: CellProvider> std::fmt::Debug for AtomicRegWriter<T, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicRegWriter").finish_non_exhaustive()
    }
}

/// Reader handle of an [`atomic_reg`].
pub struct AtomicRegReader<T: Copy + Send + 'static, P: CellProvider = RealProvider> {
    cell: Arc<SeqLockCell<T, P>>,
}

impl<T: Copy + Send + 'static, P: CellProvider> std::fmt::Debug for AtomicRegReader<T, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicRegReader").finish_non_exhaustive()
    }
}

impl<T: Copy + Send + 'static, P: CellProvider> RegWriter<T> for AtomicRegWriter<T, P> {
    fn write(&mut self, v: T) {
        self.cell.store(v);
    }
}

impl<T: Copy + Send + 'static, P: CellProvider> RegReader<T> for AtomicRegReader<T, P> {
    fn read(&mut self) -> T {
        self.cell.load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Stamped;

    #[test]
    fn bit_round_trips() {
        let (mut w, mut r) = atomic_bit(true);
        assert!(r.read());
        w.write(false);
        assert!(!r.read());
        w.write(true);
        assert!(r.read());
    }

    #[test]
    fn reg_round_trips_structs() {
        let (mut w, mut r) = atomic_reg(Stamped::new(0, 7i32));
        assert_eq!(r.read().value, 7);
        w.write(Stamped::new(3, -1));
        let got = r.read();
        assert_eq!((got.stamp, got.value), (3, -1));
    }

    #[test]
    fn handles_cross_threads() {
        let (mut w, mut r) = atomic_bit(false);
        std::thread::scope(|s| {
            s.spawn(move || w.write(true));
            s.spawn(move || {
                let _ = r.read(); // either value is fine; must not race
            });
        });
    }
}
