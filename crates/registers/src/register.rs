//! The public register façade: the top of the Section 4.1 chain.
//!
//! [`Register::new`] assembles the full construction stack —
//! SRSW atomic cells → MRSW atomic (helping matrix) → MRMW atomic
//! (Vitányi–Awerbuch) — and hands out writer and reader handles. This is
//! the "multi-reader, multi-writer, atomic, multi-value register" that
//! Herlihy \[7\] and Jayanti \[9\] assume and that the paper shows adds no
//! consensus power to deterministic types.

use crate::mrmw::{mrmw_atomic_register, Labelled, MrmwReader, MrmwWriter};
use crate::mrsw_atomic::mrsw_atomic_register;
use crate::srsw::atomic_reg;
use crate::traits::{RegReader, RegWriter, Stamped};

type BaseW<T> = Box<dyn RegWriter<Stamped<Labelled<T>>>>;
type BaseR<T> = Box<dyn RegReader<Stamped<Labelled<T>>>>;
type MidW<T> = Box<dyn RegWriter<Labelled<T>>>;
type MidR<T> = Box<dyn RegReader<Labelled<T>>>;

/// A writer handle of a [`Register`].
pub type RegisterWriter<T> = MrmwWriter<T, MidW<T>, MidR<T>>;
/// A reader handle of a [`Register`].
pub type RegisterReader<T> = MrmwReader<T, MidR<T>>;

/// A wait-free multi-reader multi-writer atomic register built from
/// single-reader single-writer atomic cells through the full
/// Section 4.1 construction chain.
///
/// # Examples
///
/// ```
/// use wfc_registers::{Register, RegReader, RegWriter};
///
/// let (mut writers, mut readers) = Register::new(0u32, 2, 3);
/// writers[1].write(7);
/// assert_eq!(readers[0].read(), 7);
/// writers[0].write(9);
/// assert!(readers.iter_mut().all(|r| r.read() == 9));
/// ```
#[derive(Debug)]
pub struct Register;

impl Register {
    /// Builds a register holding `init` with `writers` writer handles and
    /// `readers` reader handles.
    ///
    /// Writer handles can also read ([`RegReader`] is implemented for
    /// them); reader handles only read.
    ///
    /// # Panics
    ///
    /// Panics if `writers == 0`.
    #[allow(clippy::new_ret_no_self)] // constructor returns the handle sets
    pub fn new<T: Copy + Send + 'static>(
        init: T,
        writers: usize,
        readers: usize,
    ) -> (Vec<RegisterWriter<T>>, Vec<RegisterReader<T>>) {
        mrmw_atomic_register(init, writers, readers, |labelled, consumers| {
            let (w, rs) = mrsw_atomic_register(labelled, consumers, |stamped| {
                let (w, r) = atomic_reg(stamped);
                (Box::new(w) as BaseW<T>, Box::new(r) as BaseR<T>)
            });
            (
                Box::new(w) as MidW<T>,
                rs.into_iter().map(|r| Box::new(r) as MidR<T>).collect(),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_round_trips() {
        let (mut ws, mut rs) = Register::new('a', 1, 1);
        assert_eq!(rs[0].read(), 'a');
        ws[0].write('b');
        assert_eq!(rs[0].read(), 'b');
    }

    #[test]
    fn many_handles_agree_after_quiescence() {
        let (mut ws, mut rs) = Register::new(0i64, 4, 4);
        for (k, w) in ws.iter_mut().enumerate() {
            w.write(k as i64);
        }
        let last = 3;
        assert!(rs.iter_mut().all(|r| r.read() == last));
        assert!(ws.iter_mut().all(|w| w.read() == last));
    }
}
