//! Multi-valued regular register from regular bits, in unary
//! (the Peterson \[16\] lineage step of the paper's Section 4.1; the
//! construction follows the classic unary encoding, cf. Lamport \[13\]).
//!
//! A value `v ∈ {0, …, M-1}` is encoded as the lowest set bit of an
//! `M`-bit array. `write(v)` sets bit `v` and then clears bits
//! `v-1 … 0` in *descending* order; `read` scans upward and returns the
//! first set bit. Both are wait-free, and the result is a **regular**
//! multi-valued register when the bits are regular (or stronger).
//!
//! Why a read always terminates with a sound value: the bit of the last
//! completed write stays set until a *lower* write clears it, and a write
//! sets its own bit before clearing any other, so at every instant some
//! bit at or below the scan limit is set; regularity of the bits then
//! pins the returned value to the latest-completed or an overlapping
//! write.

use crate::traits::{BitReader, BitWriter, RegReader, RegWriter};

/// Creates a multi-reader regular `M`-valued register from `M` multi-reader
/// bits (allocated by `alloc`, one `(writer, readers)` pair per value, each
/// serving `readers` readers).
///
/// # Panics
///
/// Panics if `values < 2`, `init >= values`, or `alloc` returns the wrong
/// number of reader handles.
pub fn unary_regular_register<W, R>(
    init: usize,
    values: usize,
    readers: usize,
    mut alloc: impl FnMut(bool, usize) -> (W, Vec<R>),
) -> (UnaryWriter<W>, Vec<UnaryReader<R>>)
where
    W: BitWriter,
    R: BitReader,
{
    assert!(values >= 2, "a register needs at least two values");
    assert!(init < values, "initial value out of range");
    let mut bit_writers = Vec::with_capacity(values);
    // reader_rows[i] collects reader i's handle for every bit.
    let mut reader_rows: Vec<Vec<R>> = (0..readers).map(|_| Vec::with_capacity(values)).collect();
    for v in 0..values {
        let (w, rs) = alloc(v == init, readers);
        assert_eq!(rs.len(), readers, "allocator must serve every reader");
        bit_writers.push(w);
        for (row, r) in reader_rows.iter_mut().zip(rs) {
            row.push(r);
        }
    }
    (
        UnaryWriter { bits: bit_writers },
        reader_rows
            .into_iter()
            .map(|bits| UnaryReader { bits })
            .collect(),
    )
}

/// Writer handle of a [`unary_regular_register`].
#[derive(Debug)]
pub struct UnaryWriter<W> {
    bits: Vec<W>,
}

impl<W: BitWriter> RegWriter<usize> for UnaryWriter<W> {
    /// Sets bit `v`, then clears all lower bits in descending order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the register's value range.
    fn write(&mut self, v: usize) {
        assert!(v < self.bits.len(), "value out of range");
        self.bits[v].write(true);
        for i in (0..v).rev() {
            self.bits[i].write(false);
        }
    }
}

/// Reader handle of a [`unary_regular_register`].
#[derive(Debug)]
pub struct UnaryReader<R> {
    bits: Vec<R>,
}

impl<R: BitReader> RegReader<usize> for UnaryReader<R> {
    /// Scans upward and returns the index of the first set bit.
    ///
    /// # Panics
    ///
    /// Panics if no bit is set — impossible when interacting only with
    /// [`UnaryWriter`] on a properly initialised register.
    fn read(&mut self) -> usize {
        for (i, bit) in self.bits.iter_mut().enumerate() {
            if bit.read() {
                return i;
            }
        }
        panic!("unary register invariant violated: no bit set");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrsw_regular::mrsw_regular_bit;
    use crate::srsw::atomic_bit;
    use wfc_runtime::run_threads;

    fn mk(
        init: usize,
        values: usize,
        readers: usize,
    ) -> (
        UnaryWriter<impl BitWriter>,
        Vec<UnaryReader<impl BitReader>>,
    ) {
        unary_regular_register(init, values, readers, |bit_init, n| {
            mrsw_regular_bit(bit_init, n, |i| {
                let (w, r) = atomic_bit(i);
                (
                    Box::new(w) as Box<dyn BitWriter>,
                    Box::new(r) as Box<dyn BitReader>,
                )
            })
        })
    }

    #[test]
    fn sequential_read_write() {
        let (mut w, mut rs) = mk(2, 5, 3);
        assert!(rs.iter_mut().all(|r| r.read() == 2));
        w.write(4);
        assert!(rs.iter_mut().all(|r| r.read() == 4));
        w.write(0);
        assert!(rs.iter_mut().all(|r| r.read() == 0));
        w.write(4); // leaves stale bit 0? no: write(4) sets 4, clears 3..0
        assert!(rs.iter_mut().all(|r| r.read() == 4));
    }

    #[test]
    fn stale_high_bits_are_shadowed() {
        let (mut w, mut rs) = mk(0, 4, 1);
        w.write(3);
        w.write(1); // bit 3 remains set (stale) but bit 1 shadows it
        assert_eq!(rs[0].read(), 1);
        w.write(2); // clears 1, 0; bit 3 still stale; 2 is lowest set
        assert_eq!(rs[0].read(), 2);
    }

    #[test]
    #[should_panic(expected = "value out of range")]
    fn oversized_write_is_rejected() {
        let (mut w, _rs) = mk(0, 3, 1);
        w.write(3);
    }

    /// Concurrent stress: every read must return some value written by a
    /// completed-or-overlapping write (regularity), and reads never panic
    /// (the "some bit is always set" invariant).
    #[test]
    fn concurrent_reads_return_written_values() {
        let (mut w, rs) = mk(0, 8, 4);
        let mut workers: Vec<Box<dyn FnOnce() -> Vec<usize> + Send>> = Vec::new();
        workers.push(Box::new(move || {
            for k in 0..200usize {
                w.write(k % 8);
            }
            Vec::new()
        }));
        for mut r in rs {
            workers.push(Box::new(move || (0..200).map(|_| r.read()).collect()));
        }
        let results = run_threads(workers);
        for reads in &results[1..] {
            assert!(reads.iter().all(|&v| v < 8));
        }
    }
}
