//! Multi-writer multi-reader atomic register from multi-reader
//! single-writer atomic registers (the Peterson–Burns \[18\] step of the
//! paper's Section 4.1, realised as the Vitányi–Awerbuch timestamp
//! construction).
//!
//! Each of the `n` writers owns one MRSW atomic register readable by every
//! process. To write, a writer scans all registers, picks a stamp larger
//! than any it saw (breaking ties by writer id), and publishes
//! `(stamp, id, value)` in its own register. To read, a process scans all
//! registers and returns the value with the lexicographically largest
//! `(stamp, id)`. Writer ids totally order concurrent writes with equal
//! stamps, which makes the register atomic.

use crate::traits::{RegReader, RegWriter};

/// A value labelled with its writer's stamp and identity; the label pair
/// is the total order on writes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Labelled<T> {
    /// Writer-chosen sequence number.
    pub stamp: u64,
    /// The writer's index, breaking stamp ties.
    pub writer: usize,
    /// The carried value.
    pub value: T,
}

impl<T> Labelled<T> {
    fn label(&self) -> (u64, usize) {
        (self.stamp, self.writer)
    }
}

/// Creates a multi-writer multi-reader atomic register for `writers`
/// writers and `readers` readers.
///
/// `alloc(init, consumers)` must return a fresh **MRSW atomic** register
/// of [`Labelled<T>`] with `consumers` reader handles — e.g. a
/// [`crate::mrsw_atomic_register`]. Register `k` is written by writer `k`
/// and read by everyone: each writer holds a reader handle on every
/// register (including its own) to compute the next stamp, and each
/// reader holds a reader handle on every register.
///
/// # Panics
///
/// Panics if `writers == 0` or the allocator returns the wrong number of
/// reader handles.
pub fn mrmw_atomic_register<T, W, R>(
    init: T,
    writers: usize,
    readers: usize,
    mut alloc: impl FnMut(Labelled<T>, usize) -> (W, Vec<R>),
) -> MrmwHandles<T, W, R>
where
    T: Copy,
    W: RegWriter<Labelled<T>>,
    R: RegReader<Labelled<T>>,
{
    assert!(writers > 0, "a register needs at least one writer");
    let consumers = writers + readers;
    let mut own_writers = Vec::with_capacity(writers);
    // scan_rows[c][k]: consumer c's reader handle on register k;
    // consumers 0..writers are the writers, then the readers.
    let mut scan_rows: Vec<Vec<R>> = (0..consumers)
        .map(|_| Vec::with_capacity(writers))
        .collect();
    for _k in 0..writers {
        let (w, rs) = alloc(
            Labelled {
                stamp: 0,
                writer: 0,
                value: init,
            },
            consumers,
        );
        assert_eq!(rs.len(), consumers, "allocator must serve every consumer");
        own_writers.push(w);
        for (row, r) in scan_rows.iter_mut().zip(rs) {
            row.push(r);
        }
    }
    let mut rows = scan_rows.into_iter();
    let writer_handles = own_writers
        .into_iter()
        .enumerate()
        .map(|(me, own)| MrmwWriter {
            me,
            own,
            scan: rows.next().expect("row per consumer"),
            _marker: std::marker::PhantomData,
        })
        .collect();
    let reader_handles = rows
        .map(|scan| MrmwReader {
            scan,
            _marker: std::marker::PhantomData,
        })
        .collect();
    (writer_handles, reader_handles)
}

/// The handle set returned by [`mrmw_atomic_register`]: one writer
/// handle per writer and one reader handle per reader.
pub type MrmwHandles<T, W, R> = (Vec<MrmwWriter<T, W, R>>, Vec<MrmwReader<T, R>>);

/// Writer handle `me` of a [`mrmw_atomic_register`]; also usable as a
/// reader (writers legitimately read the register they co-own).
#[derive(Debug)]
pub struct MrmwWriter<T, W, R> {
    me: usize,
    own: W,
    scan: Vec<R>,
    _marker: std::marker::PhantomData<T>,
}

fn scan_max<T, R>(scan: &mut [R]) -> Labelled<T>
where
    T: Copy,
    R: RegReader<Labelled<T>>,
{
    let mut best = scan[0].read();
    for cell in &mut scan[1..] {
        let got = cell.read();
        if got.label() > best.label() {
            best = got;
        }
    }
    best
}

impl<T, W, R> RegWriter<T> for MrmwWriter<T, W, R>
where
    T: Copy + Send,
    W: RegWriter<Labelled<T>>,
    R: RegReader<Labelled<T>>,
{
    fn write(&mut self, v: T) {
        let max = scan_max(&mut self.scan);
        self.own.write(Labelled {
            stamp: max.stamp + 1,
            writer: self.me,
            value: v,
        });
    }
}

impl<T, W, R> RegReader<T> for MrmwWriter<T, W, R>
where
    T: Copy + Send,
    W: RegWriter<Labelled<T>>,
    R: RegReader<Labelled<T>>,
{
    fn read(&mut self) -> T {
        scan_max(&mut self.scan).value
    }
}

/// Reader handle of a [`mrmw_atomic_register`].
#[derive(Debug)]
pub struct MrmwReader<T, R> {
    scan: Vec<R>,
    _marker: std::marker::PhantomData<T>,
}

impl<T, R> RegReader<T> for MrmwReader<T, R>
where
    T: Copy + Send,
    R: RegReader<Labelled<T>>,
{
    fn read(&mut self) -> T {
        scan_max(&mut self.scan).value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrsw_atomic::mrsw_atomic_register;
    use crate::srsw::atomic_reg;
    use crate::traits::Stamped;
    use wfc_runtime::run_threads;

    type W<T> = Box<dyn RegWriter<Labelled<T>>>;
    type R<T> = Box<dyn RegReader<Labelled<T>>>;

    /// Stack: MRMW over MRSW-atomic over SRSW atomic cells — the paper's
    /// full Section 4.1 chain for stamped values.
    #[allow(clippy::type_complexity)]
    fn mk<T: Copy + Send + 'static>(
        init: T,
        writers: usize,
        readers: usize,
    ) -> (Vec<MrmwWriter<T, W<T>, R<T>>>, Vec<MrmwReader<T, R<T>>>) {
        mrmw_atomic_register(init, writers, readers, |labelled, consumers| {
            let (w, rs) = mrsw_atomic_register(labelled, consumers, |stamped| {
                let (w, r) = atomic_reg(stamped);
                (
                    Box::new(w) as Box<dyn RegWriter<Stamped<Labelled<T>>>>,
                    Box::new(r) as Box<dyn RegReader<Stamped<Labelled<T>>>>,
                )
            });
            (
                Box::new(w) as W<T>,
                rs.into_iter().map(|r| Box::new(r) as R<T>).collect(),
            )
        })
    }

    #[test]
    fn sequential_multi_writer_semantics() {
        let (mut ws, mut rs) = mk(0u32, 3, 2);
        ws[0].write(10);
        ws[1].write(20);
        assert!(rs.iter_mut().all(|r| r.read() == 20));
        ws[2].write(30);
        assert!(rs.iter_mut().all(|r| r.read() == 30));
        ws[0].write(40);
        assert!(rs.iter_mut().all(|r| r.read() == 40));
        // Writers can read too.
        assert_eq!(ws[1].read(), 40);
    }

    #[test]
    fn later_write_wins_even_from_lower_id() {
        let (mut ws, mut rs) = mk(0u32, 2, 1);
        ws[1].write(5);
        ws[0].write(6); // scans, sees stamp 1, uses stamp 2
        assert_eq!(rs[0].read(), 6);
    }

    #[test]
    fn ties_break_by_writer_id() {
        // Both writers write "concurrently" from the initial state: both
        // pick stamp 1; the higher id must win deterministically.
        let (mut ws, mut rs) = mk(0u32, 2, 1);
        // Simulate the racy schedule at the semantic level: both scan
        // before either writes. We can't force that through the public
        // API sequentially, so emulate: writer 0 writes with what it
        // scanned (stamp 1), then writer 1 — having scanned *before* —
        // would also use stamp 1. The tie rule says writer 1's value is
        // the register's value.
        ws[0].write(111); // (1, 0, 111)
                          // Writer 1's scan now sees stamp 1 and uses 2 — sequentially there
                          // is no tie; the tie path is exercised in the concurrent stress.
        ws[1].write(222);
        assert_eq!(rs[0].read(), 222);
    }

    /// Linearizability stress via history recording: concurrent writers
    /// and readers on the full chain; the recorded history must linearize
    /// against the multi-value register specification.
    #[test]
    fn concurrent_history_linearizes() {
        use wfc_explorer::linearizability::is_linearizable;
        use wfc_runtime::EventLog;
        use wfc_spec::{canonical, PortId};

        let values = 4usize;
        let ty = canonical::register(values, 8);
        let init = ty.state_id("v0").unwrap();
        let read_inv = ty.invocation_id("read").unwrap();
        let ok = ty.response_id("ok").unwrap();

        for round in 0..20 {
            let (ws, rs) = mk(0usize, 2, 2);
            let log = EventLog::new();
            let mut workers: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
            for (k, mut w) in ws.into_iter().enumerate() {
                let log = &log;
                let ty = &ty;
                workers.push(Box::new(move || {
                    for j in 0..3usize {
                        let v = (round + 2 * j + k) % values;
                        let inv = ty.invocation_id(&format!("write{v}")).unwrap();
                        let t0 = log.stamp();
                        w.write(v);
                        let t1 = log.stamp();
                        log.record(PortId::new(k), inv, ok, t0, t1);
                    }
                }));
            }
            for (k, mut r) in rs.into_iter().enumerate() {
                let log = &log;
                let ty = &ty;
                workers.push(Box::new(move || {
                    for _ in 0..3 {
                        let t0 = log.stamp();
                        let v = r.read();
                        let t1 = log.stamp();
                        let resp = ty.response_id(&v.to_string()).unwrap();
                        log.record(PortId::new(2 + k), read_inv, resp, t0, t1);
                    }
                }));
            }
            run_threads(workers);
            let history = log.take_history();
            assert!(
                is_linearizable(&ty, init, &history),
                "round {round}: history not linearizable: {:?}",
                history
            );
        }
    }
}
