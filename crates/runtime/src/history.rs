//! Concurrent-history recording for runtime executions.
//!
//! Real-thread tests of the register constructions (Section 4.1) cannot
//! enumerate schedules the way the explorer does; instead they *record*
//! the concurrent history each execution produces — invocation and
//! response events stamped by a global atomic counter — and check it
//! afterwards against the implemented type's sequential specification
//! with the linearizability checker (and, for regular registers, the
//! [`is_regular`] checker in this module).

use std::sync::atomic::{AtomicI64, Ordering};

use std::sync::Mutex;
use wfc_explorer::linearizability::{ConcurrentHistory, OpRecord};
use wfc_spec::{InvId, PortId, RespId};

/// A thread-safe log of completed operations with global timestamps.
///
/// # Examples
///
/// ```
/// use wfc_runtime::EventLog;
/// use wfc_spec::{canonical, PortId};
///
/// let reg = canonical::boolean_register(2);
/// let log = EventLog::new();
/// let t0 = log.stamp();
/// let t1 = log.stamp();
/// log.record(
///     PortId::new(0),
///     reg.invocation_id("write1").unwrap(),
///     reg.response_id("ok").unwrap(),
///     t0,
///     t1,
/// );
/// assert_eq!(log.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct EventLog {
    clock: AtomicI64,
    ops: Mutex<Vec<OpRecord>>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Draws a fresh, strictly-increasing timestamp. Call once at the
    /// start of an operation and once at its end.
    pub fn stamp(&self) -> i64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// Records a completed operation.
    ///
    /// # Panics
    ///
    /// Panics if `responded_at < invoked_at`.
    pub fn record(
        &self,
        port: PortId,
        inv: InvId,
        resp: RespId,
        invoked_at: i64,
        responded_at: i64,
    ) {
        assert!(invoked_at <= responded_at, "response precedes invocation");
        self.ops.lock().expect("mutex poisoned").push(OpRecord {
            port,
            inv,
            resp,
            invoked_at,
            responded_at,
        });
    }

    /// The number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.lock().expect("mutex poisoned").len()
    }

    /// `true` if no operations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.lock().expect("mutex poisoned").is_empty()
    }

    /// Extracts the recorded operations as a [`ConcurrentHistory`] for the
    /// linearizability checker, consuming the log's contents.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 operations were recorded (checker limit).
    pub fn take_history(&self) -> ConcurrentHistory {
        let ops = std::mem::take(&mut *self.ops.lock().expect("mutex poisoned"));
        ConcurrentHistory::new(ops)
    }

    /// A snapshot of the recorded operations.
    pub fn snapshot(&self) -> Vec<OpRecord> {
        self.ops.lock().expect("mutex poisoned").clone()
    }
}

/// Checks *regularity* of a single-writer register history: every read
/// must return either the value of the latest write that completed before
/// the read was invoked, or the value of some write overlapping the read.
///
/// `ops` must contain reads (invocation `read_inv`) and writes; a write's
/// written value is given by `written(inv)`, a read's returned value by
/// `read_value(resp)`. `initial` is the register's initial value.
///
/// Unlike linearizability, regularity places no consistency requirement
/// *across* reads — it is exactly the guarantee of the paper's Section 4.1
/// sources for the Lamport construction.
pub fn is_regular<V: PartialEq + Copy>(
    ops: &[OpRecord],
    read_inv: InvId,
    written: impl Fn(InvId) -> Option<V>,
    read_value: impl Fn(RespId) -> V,
    initial: V,
) -> bool {
    let writes: Vec<&OpRecord> = ops.iter().filter(|o| o.inv != read_inv).collect();
    for read in ops.iter().filter(|o| o.inv == read_inv) {
        let got = read_value(read.resp);
        // Latest write completed before the read began.
        let last_before = writes
            .iter()
            .filter(|w| w.responded_at < read.invoked_at)
            .max_by_key(|w| w.responded_at);
        let baseline = match last_before {
            Some(w) => written(w.inv).expect("write invocation carries a value"),
            None => initial,
        };
        let mut feasible = got == baseline;
        // Any write overlapping the read.
        for w in &writes {
            let overlaps = w.invoked_at <= read.responded_at && w.responded_at >= read.invoked_at;
            if overlaps && written(w.inv).expect("write carries a value") == got {
                feasible = true;
            }
        }
        if !feasible {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfc_spec::canonical;

    fn ids() -> (
        wfc_spec::FiniteType,
        InvId,
        InvId,
        InvId,
        RespId,
        RespId,
        RespId,
    ) {
        let reg = canonical::boolean_register(2);
        let read = reg.invocation_id("read").unwrap();
        let w0 = reg.invocation_id("write0").unwrap();
        let w1 = reg.invocation_id("write1").unwrap();
        let r0 = reg.response_id("0").unwrap();
        let r1 = reg.response_id("1").unwrap();
        let ok = reg.response_id("ok").unwrap();
        (reg, read, w0, w1, r0, r1, ok)
    }

    fn rec(port: usize, inv: InvId, resp: RespId, iv: i64, rv: i64) -> OpRecord {
        OpRecord {
            port: PortId::new(port),
            inv,
            resp,
            invoked_at: iv,
            responded_at: rv,
        }
    }

    #[test]
    fn stamps_are_strictly_increasing() {
        let log = EventLog::new();
        let a = log.stamp();
        let b = log.stamp();
        assert!(a < b);
    }

    #[test]
    fn take_history_drains_the_log() {
        let (reg, read, _, _, r0, _, _) = ids();
        let _ = reg;
        let log = EventLog::new();
        log.record(PortId::new(0), read, r0, 0, 1);
        let h = log.take_history();
        assert_eq!(h.ops().len(), 1);
        assert!(log.is_empty());
    }

    #[test]
    fn regular_history_with_overlap_passes() {
        let (_, read, _, w1, r0, r1, ok) = ids();
        let val = |resp: RespId| resp == r1;
        let wv = |inv: InvId| if inv == w1 { Some(true) } else { Some(false) };
        // Write of 1 overlaps a read that may return either value.
        for resp in [r0, r1] {
            let ops = vec![rec(0, w1, ok, 0, 3), rec(1, read, resp, 1, 2)];
            assert!(is_regular(&ops, read, wv, val, false));
        }
    }

    #[test]
    fn stale_read_fails_regularity() {
        let (_, read, _, w1, r0, _, ok) = ids();
        let val = |resp: RespId| resp != r0;
        let wv = |inv: InvId| if inv == w1 { Some(true) } else { Some(false) };
        // Write completed before the read began, but the read returns the
        // old value 0 — forbidden even for regular registers.
        let ops = vec![rec(0, w1, ok, 0, 1), rec(1, read, r0, 2, 3)];
        assert!(!is_regular(&ops, read, wv, val, false));
    }

    #[test]
    fn new_old_inversion_is_allowed_by_regularity() {
        let (_, read, _, w1, r0, r1, ok) = ids();
        let val = |resp: RespId| resp == r1;
        let wv = |inv: InvId| if inv == w1 { Some(true) } else { Some(false) };
        // One long write; reader sees new then old: non-linearizable but
        // perfectly regular (both reads overlap the write).
        let ops = vec![
            rec(0, w1, ok, 0, 9),
            rec(1, read, r1, 1, 2),
            rec(1, read, r0, 3, 4),
        ];
        assert!(is_regular(&ops, read, wv, val, false));
    }
}
