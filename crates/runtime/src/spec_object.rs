//! Linearizable runtime instances of arbitrary finite types.
//!
//! A [`SpecObject`] turns any `wfc-spec` [`FiniteType`] into a real shared
//! object: invocations apply the transition function atomically (under a
//! mutex, which trivially linearizes them). This is the runtime analogue
//! of the paper's "objects of type `T`" and serves as the reference
//! implementation that native lock-free objects are benchmarked and
//! differentially tested against.
//!
//! Port discipline is enforced at the type level: [`SpecObject::ports`]
//! hands out one [`PortHandle`] per port, and only a handle can invoke —
//! "at most one process may use a port" (paper, Section 2.1) becomes
//! ownership.

use std::sync::Arc;

use std::sync::Mutex;
use wfc_spec::{FiniteType, InvId, Outcome, PortId, RespId, StateId};

/// How a [`SpecObject`] resolves nondeterministic outcome sets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Nondeterminism {
    /// Always take the first outcome (deterministic, reproducible).
    #[default]
    First,
    /// Rotate through outcomes (adversarial-ish coverage in stress tests).
    RoundRobin,
}

#[derive(Debug)]
struct Inner {
    ty: Arc<FiniteType>,
    state: Mutex<(StateId, u64)>, // (current state, round-robin counter)
    mode: Nondeterminism,
}

/// A linearizable shared object of an arbitrary [`FiniteType`].
#[derive(Debug)]
pub struct SpecObject {
    inner: Arc<Inner>,
}

impl SpecObject {
    /// Creates an object of `ty` initialised to `init`.
    ///
    /// # Panics
    ///
    /// Panics if `init` is out of range for `ty`.
    pub fn new(ty: Arc<FiniteType>, init: StateId, mode: Nondeterminism) -> Self {
        assert!(
            init.index() < ty.state_count(),
            "initial state out of range"
        );
        SpecObject {
            inner: Arc::new(Inner {
                ty,
                state: Mutex::new((init, 0)),
                mode,
            }),
        }
    }

    /// The object's type.
    pub fn ty(&self) -> &Arc<FiniteType> {
        &self.inner.ty
    }

    /// Consumes the object and returns one [`PortHandle`] per port.
    pub fn ports(self) -> Vec<PortHandle> {
        (0..self.inner.ty.ports())
            .map(|p| PortHandle {
                inner: Arc::clone(&self.inner),
                port: PortId::new(p),
            })
            .collect()
    }

    /// The current state — test observability only; real processes cannot
    /// see object states.
    pub fn peek_state(&self) -> StateId {
        self.inner.state.lock().expect("mutex poisoned").0
    }
}

/// The capability to invoke operations through one port of a
/// [`SpecObject`]. Not cloneable: one process per port.
#[derive(Debug)]
pub struct PortHandle {
    inner: Arc<Inner>,
    port: PortId,
}

impl PortHandle {
    /// The port this handle owns.
    pub fn port(&self) -> PortId {
        self.port
    }

    /// The object's type.
    pub fn ty(&self) -> &Arc<FiniteType> {
        &self.inner.ty
    }

    /// Atomically applies `inv` through this port and returns the
    /// response.
    ///
    /// # Panics
    ///
    /// Panics if `inv` is out of range for the object's type.
    pub fn invoke(&self, inv: InvId) -> RespId {
        let mut guard = self.inner.state.lock().expect("mutex poisoned");
        let (state, counter) = *guard;
        let outcomes = self.inner.ty.outcomes(state, self.port, inv);
        let pick = match self.inner.mode {
            Nondeterminism::First => 0,
            Nondeterminism::RoundRobin => (counter as usize) % outcomes.len(),
        };
        let Outcome { next, resp } = outcomes[pick];
        *guard = (next, counter.wrapping_add(1));
        resp
    }

    /// Convenience: invoke by invocation name, returning the response name.
    ///
    /// # Panics
    ///
    /// Panics if `inv` is not an invocation of the type.
    pub fn invoke_named(&self, inv: &str) -> String {
        let inv = self
            .inner
            .ty
            .invocation_id(inv)
            .unwrap_or_else(|| panic!("no invocation `{inv}` on {}", self.inner.ty.name()));
        let resp = self.invoke(inv);
        self.inner.ty.response_name(resp).to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfc_spec::canonical;

    #[test]
    fn tas_object_serves_all_ports() {
        let tas = Arc::new(canonical::test_and_set(3));
        let init = tas.state_id("unset").unwrap();
        let obj = SpecObject::new(tas, init, Nondeterminism::First);
        let handles = obj.ports();
        assert_eq!(handles.len(), 3);
        assert_eq!(handles[1].invoke_named("test_and_set"), "0");
        assert_eq!(handles[0].invoke_named("test_and_set"), "1");
        assert_eq!(handles[2].invoke_named("read"), "1");
    }

    #[test]
    fn round_robin_cycles_nondeterministic_outcomes() {
        let oub = Arc::new(canonical::one_use_bit());
        let dead = oub.state_id("DEAD").unwrap();
        let obj = SpecObject::new(oub, dead, Nondeterminism::RoundRobin);
        let handles = obj.ports();
        let reads: Vec<String> = (0..4).map(|_| handles[0].invoke_named("read")).collect();
        assert!(reads.contains(&"0".to_owned()));
        assert!(reads.contains(&"1".to_owned()));
    }

    #[test]
    fn first_mode_is_reproducible() {
        let oub = Arc::new(canonical::one_use_bit());
        let dead = oub.state_id("DEAD").unwrap();
        let obj = SpecObject::new(oub, dead, Nondeterminism::First);
        let handles = obj.ports();
        let a = handles[0].invoke_named("read");
        let b = handles[0].invoke_named("read");
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_invocations_linearize() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let tas = Arc::new(canonical::test_and_set(4));
        let init = tas.state_id("unset").unwrap();
        let obj = SpecObject::new(tas, init, Nondeterminism::First);
        let winners = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for h in obj.ports() {
                let winners = &winners;
                s.spawn(move || {
                    if h.invoke_named("test_and_set") == "0" {
                        winners.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(winners.load(Ordering::SeqCst), 1, "exactly one TAS winner");
    }
}
