//! # `wfc-runtime` — real-thread harness and spec-backed shared objects
//!
//! The runtime substrate for exercising the paper's constructions under
//! genuine concurrency (as opposed to the exhaustive but small-scale
//! schedules of `wfc-explorer`):
//!
//! * [`SpecObject`] — a linearizable runtime instance of *any*
//!   `wfc-spec` finite type, with ownership-enforced port discipline;
//!   the reference implementation for differential tests and baselines.
//! * [`EventLog`] — global-timestamped history recording, feeding the
//!   `wfc-explorer` linearizability checker and the [`is_regular`]
//!   regularity checker.
//! * [`run_threads`] — barrier-released thread harness; [`Jitter`] —
//!   deterministic schedule-shaking for stress tests.
//!
//! ## Example: record and check a concurrent run
//!
//! ```
//! use std::sync::Arc;
//! use wfc_runtime::{run_threads, EventLog, Nondeterminism, SpecObject};
//! use wfc_explorer::linearizability::is_linearizable;
//! use wfc_spec::canonical;
//!
//! let ty = Arc::new(canonical::test_and_set(2));
//! let init = ty.state_id("unset").unwrap();
//! let tas = ty.invocation_id("test_and_set").unwrap();
//! let log = EventLog::new();
//! let handles = SpecObject::new(Arc::clone(&ty), init, Nondeterminism::First).ports();
//! run_threads(
//!     handles
//!         .into_iter()
//!         .map(|h| {
//!             let log = &log;
//!             move || {
//!                 let t0 = log.stamp();
//!                 let resp = h.invoke(tas);
//!                 let t1 = log.stamp();
//!                 log.record(h.port(), tas, resp, t0, t1);
//!             }
//!         })
//!         .collect::<Vec<_>>(),
//! );
//! assert!(is_linearizable(&ty, init, &log.take_history()));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod harness;
mod history;
mod spec_object;

pub use harness::{run_threads, Jitter};
pub use history::{is_regular, EventLog};
pub use spec_object::{Nondeterminism, PortHandle, SpecObject};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::EventLog>();
        assert_send_sync::<crate::SpecObject>();
        assert_send_sync::<crate::PortHandle>();
    }
}
