//! Real-thread execution harness for stress tests and benchmarks.

use std::sync::Barrier;

/// Runs one closure per thread, released simultaneously by a barrier, and
/// returns their results in spawn order.
///
/// The barrier maximises the window for real interleavings: without it,
/// early threads often finish before later ones start, hiding races.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use wfc_runtime::run_threads;
///
/// let counter = AtomicUsize::new(0);
/// let results = run_threads(
///     (0..4)
///         .map(|_| || counter.fetch_add(1, Ordering::SeqCst))
///         .collect::<Vec<_>>(),
/// );
/// assert_eq!(results.len(), 4);
/// assert_eq!(counter.load(Ordering::SeqCst), 4);
/// ```
///
/// # Panics
///
/// Panics if any worker panics.
pub fn run_threads<T, F>(workers: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    wfc_obs::counter!("runtime.harness.runs");
    wfc_obs::counter!("runtime.harness.threads", workers.len() as u64);
    let barrier = Barrier::new(workers.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = workers
            .into_iter()
            .map(|w| {
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    w()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

/// A tiny deterministic pseudo-random jitter source (xorshift) for shaking
/// thread schedules in stress tests without pulling a full RNG into the
/// hot path.
#[derive(Clone, Debug)]
pub struct Jitter {
    state: u64,
}

impl Jitter {
    /// Creates a jitter source from a nonzero seed.
    pub fn new(seed: u64) -> Self {
        Jitter { state: seed.max(1) }
    }

    /// Advances the generator and returns the next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Spins or yields a pseudo-random, small amount: call between shared
    /// accesses in stress tests to diversify interleavings.
    pub fn stall(&mut self) {
        match self.next_u64() % 4 {
            0 => {}
            1 => std::hint::spin_loop(),
            2 => {
                for _ in 0..(self.next_u64() % 64) {
                    std::hint::spin_loop();
                }
            }
            _ => std::thread::yield_now(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_spawn_order() {
        let results = run_threads((0..8).map(|i| move || i * 2).collect::<Vec<_>>());
        assert_eq!(results, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mut a = Jitter::new(42);
        let mut b = Jitter::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn jitter_zero_seed_is_fixed_up() {
        let mut j = Jitter::new(0);
        assert_ne!(j.next_u64(), 0);
    }
}
